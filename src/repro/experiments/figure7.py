"""Figure 7 -- lifetime distribution of the on/off model with a single well.

Setting (Section 6.1): Erlang-1 on/off workload with frequency 1 Hz and
0.96 A on-current; battery capacity 7200 As with ``c = 1`` and ``k = 0``
(the degenerate KiBaM where all charge is available).  The lifetime is
nearly deterministic at about 15000 s; the Markovian approximation is run
for several step sizes ``Delta`` and compared with 1000 simulation runs.
Because the rewards take only two values (0.96 A and 0 A), the *exact*
lifetime CDF is also computed with the occupation-time algorithm of
:mod:`repro.reward.occupation`, which the paper cites as applicable to this
special case.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.comparison import kolmogorov_distance
from repro.analysis.report import format_series
from repro.battery.parameters import KiBaMParameters
from repro.experiments.common import approximation_curves, exact_curve, simulation_curve
from repro.experiments.registry import ExperimentConfig, ExperimentResult, register_experiment
from repro.workload.onoff import onoff_workload

__all__ = ["run", "onoff_single_well_battery", "FIGURE7_TIMES"]

#: Evaluation grid of Figure 7 (seconds).
FIGURE7_TIMES = np.linspace(6000.0, 20000.0, 29)


def onoff_single_well_battery() -> KiBaMParameters:
    """Battery of Figure 7: 7200 As, all charge available, no transfer."""
    return KiBaMParameters(capacity=7200.0, c=1.0, k=0.0)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Reproduce Figure 7."""
    workload = onoff_workload(frequency=1.0, erlang_k=1)
    battery = onoff_single_well_battery()
    times = FIGURE7_TIMES

    deltas = [100.0, 50.0, 25.0]
    if config.full:
        deltas += [5.0]
    curves = approximation_curves(
        workload, battery, deltas, times, config=config
    )

    simulation = simulation_curve(
        workload,
        battery,
        times,
        n_runs=config.n_simulation_runs,
        seed=config.seed,
        label=f"simulation ({config.n_simulation_runs} runs)",
    )

    exact = exact_curve(
        workload, battery, times, label="exact (occupation-time algorithm)"
    )

    all_curves = curves + [simulation, exact]
    table = format_series(all_curves, times, time_label="t (s)")

    distances = {
        curve.label: kolmogorov_distance(curve, exact) for curve in curves + [simulation]
    }
    median_lifetime = exact.quantile(0.5)

    return ExperimentResult(
        experiment_id="figure7",
        title="Lifetime distribution, on/off model, C=7200 As, c=1, k=0 (Figure 7)",
        tables={
            "Pr[battery empty at t]": table,
            "distance to exact": "\n".join(
                f"  {label}: {distance:.4f}" for label, distance in distances.items()
            ),
        },
        data={
            "times": times.tolist(),
            "curves": {curve.label: curve.probabilities.tolist() for curve in all_curves},
            "distances_to_exact": distances,
            "median_lifetime_seconds": median_lifetime,
        },
        paper_reference={
            "lifetime": "close to deterministic with a mean of about 15000 s",
            "convergence": "curves for decreasing Delta approach the simulation curve, but even "
            "Delta=5 does not capture the almost-deterministic lifetime well",
            "state space": "Delta=5 gives 2882 states; t=17000 s needs more than 36000 iterations",
        },
        notes=[
            "The exact occupation-time curve is an addition over the paper; it confirms both the "
            "simulation and the direction of convergence of the approximation.",
            f"Median lifetime (exact): {median_lifetime:.0f} s.",
        ],
    )


register_experiment("figure7", run)
