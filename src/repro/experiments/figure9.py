"""Figure 9 -- on/off model with different initial capacities.

Three battery settings are compared for the 1 Hz on/off workload
(Section 6.1):

* ``C = 7200 As, c = 1`` -- all charge readily available (longest lifetime),
* ``C = 7200 As, c = 0.625`` -- 62.5 % available, the rest bound,
* ``C = 4500 As, c = 1`` -- only the available part, no bound charge at all
  (shortest lifetime).

The paper computes all three with ``Delta = 5``; by default this driver uses
coarser steps (the two-well case is the expensive one) and the full setting
restores the paper's resolution.  The qualitative ordering of the three
curves is the reproduction target.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.comparison import stochastically_dominates
from repro.analysis.report import format_series
from repro.battery.parameters import KiBaMParameters, rao_battery_parameters
from repro.engine import ScenarioBatch, run_sweep
from repro.experiments.common import lifetime_problem, sweep_options
from repro.experiments.registry import ExperimentConfig, ExperimentResult, register_experiment
from repro.workload.onoff import onoff_workload

__all__ = ["run", "FIGURE9_TIMES"]

#: Evaluation grid of Figure 9 (seconds).
FIGURE9_TIMES = np.linspace(6000.0, 20000.0, 29)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Reproduce Figure 9."""
    workload = onoff_workload(frequency=1.0, erlang_k=1)
    times = FIGURE9_TIMES

    single_well_delta = 5.0 if config.full else 25.0
    two_well_delta = 5.0 if config.full else 50.0

    scenarios = [
        ("C=4500, c=1", KiBaMParameters(capacity=4500.0, c=1.0, k=0.0), single_well_delta),
        ("C=7200, c=0.625", rao_battery_parameters(), two_well_delta),
        ("C=7200, c=1", KiBaMParameters(capacity=7200.0, c=1.0, k=0.0), single_well_delta),
    ]

    # One engine sweep: the two single-well scenarios share the same
    # transfer-free chain and are propagated as a stacked block; with
    # config.workers > 1 the chain groups solve in parallel processes.
    batch = ScenarioBatch(
        lifetime_problem(
            workload, battery, times, delta=delta, label=f"{label} (Delta={delta:g})"
        )
        for label, battery, delta in scenarios
    )
    curves = run_sweep(
        batch, "mrm-uniformization", options=sweep_options(config)
    ).distributions

    table = format_series(curves, times, time_label="t (s)")
    short, middle, long_curve = curves
    ordering_holds = stochastically_dominates(long_curve, middle, tolerance=0.02) and stochastically_dominates(
        middle, short, tolerance=0.02
    )

    return ExperimentResult(
        experiment_id="figure9",
        title="On/off model with different initial capacities (Figure 9)",
        tables={"Pr[battery empty at t]": table},
        data={
            "times": times.tolist(),
            "curves": {curve.label: curve.probabilities.tolist() for curve in curves},
            "ordering_holds": ordering_holds,
            "deltas": {"single_well": single_well_delta, "two_well": two_well_delta},
        },
        paper_reference={
            "ordering": "(C=4500, c=1) empties first, then (C=7200, c=0.625), then (C=7200, c=1)",
            "reason": "with c=1 all charge is available; with c=0.625 part of the charge is bound and "
            "only becomes available through the (slow) transfer; with C=4500 there is no bound "
            "charge to recover at all",
        },
        notes=[
            f"Stochastic ordering of the three curves reproduced: {ordering_holds}.",
            "The paper uses Delta=5 for all three curves; REPRO_FULL=1 restores that setting.",
        ],
    )


register_experiment("figure9", run)
