"""Reproduction drivers for every table and figure of the paper.

Each module reproduces one artefact of the evaluation section:

========  ==========================================================
module    paper artefact
========  ==========================================================
table1    Table 1  -- KiBaM / modified-KiBaM lifetimes vs. measurements
figure2   Figure 2 -- evolution of the two wells under a 0.001 Hz square wave
figure7   Figure 7 -- on/off model, single well (c = 1, k = 0)
figure8   Figure 8 -- on/off model, two wells (c = 0.625)
figure9   Figure 9 -- on/off model with different initial capacities
figure10  Figure 10 -- simple model, three battery settings
figure11  Figure 11 -- simple vs. burst model
ablation_delta   step-size convergence study (Section 6.1 discussion)
ablation_erlang  Erlang-K shape study (Section 6.1 discussion)
========  ==========================================================

Every module exposes ``run(config) -> ExperimentResult``; the shared
configuration and result containers live in
:mod:`repro.experiments.registry`, and :mod:`repro.experiments.runner` runs
everything in one go.
"""

from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentResult,
    available_experiments,
    get_experiment,
    register_experiment,
)
from repro.experiments.runner import run_all, run_experiment

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "available_experiments",
    "get_experiment",
    "register_experiment",
    "run_all",
    "run_experiment",
]
