"""Structural protocols for the library's plug points.

Three extension seams keep the solver pipeline swappable -- the chain
representation (assembled CSR / :class:`~repro.markov.kronecker.KroneckerGenerator`
/ lumped quotient), the uniformisation kernel
(:class:`~repro.markov.kernels.ScipyKernel` /
:class:`~repro.markov.kernels.CompiledKernel`) and the scheduler policy
registry of :mod:`repro.multibattery.policies`.  None of them requires a
common base class; what matters is the *shape* of the objects.  These
:class:`typing.Protocol` definitions write that shape down so mypy checks
implementations structurally and the test suite can assert conformance at
runtime (every protocol is ``runtime_checkable``).

This module deliberately imports no concrete implementation -- protocols
would otherwise re-couple the seams they exist to keep apart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np
import numpy.typing as npt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable, Mapping

    import scipy.sparse as sp

    from repro.markov.kernels import SegmentResult

__all__ = [
    "DiscretizedChain",
    "FloatArray",
    "GeneratorLike",
    "GeneratorOperator",
    "IntArray",
    "SchedulerPolicy",
    "SweepExecutor",
    "TraceSink",
    "UniformizationKernel",
]

#: Dense float64 array -- the working dtype of every propagation path.
FloatArray = npt.NDArray[np.float64]

#: Integer index array (state indices, truncation points, counts).
IntArray = npt.NDArray[np.int64]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import TypeAlias

    #: Anything the solvers accept as a CTMC generator: an assembled sparse
    #: matrix, a (small) dense array, or a matrix-free operator.
    GeneratorLike: TypeAlias = "sp.spmatrix | sp.sparray | FloatArray | GeneratorOperator"
else:  # pragma: no cover - runtime alias for isinstance-free annotation use
    GeneratorLike = object


@runtime_checkable
class GeneratorOperator(Protocol):
    """A matrix-free CTMC generator: everything ``v @ Q`` needs.

    :class:`~repro.markov.kronecker.KroneckerGenerator` is the shipped
    implementation; any operator with this shape (a GPU-resident variant,
    a hierarchical term structure) drops into
    :class:`~repro.markov.uniformization.TransientPropagator` unchanged.
    """

    @property
    def shape(self) -> tuple[int, int]:
        """Square ``(n, n)`` logical shape."""
        ...

    @property
    def nnz(self) -> int:
        """Implied non-zero count of the assembled matrix."""
        ...

    def diagonal(self) -> FloatArray:
        """The generator diagonal (negated exit rates)."""
        ...

    def validate(self) -> None:
        """Raise when the operator's structural invariants are broken."""
        ...

    def to_csr(self, *, max_bytes: int | None = None) -> "sp.csr_matrix":
        """Assemble the operator (small chains / cross-checks only)."""
        ...

    def __rmatmul__(self, other: FloatArray) -> FloatArray:
        """Evaluate ``other @ Q`` without assembling ``Q``."""
        ...


@runtime_checkable
class UniformizationKernel(Protocol):
    """One implementation of the uniformisation inner loop.

    The propagator only ever calls ``spmm`` (one ``v @ P`` product) and
    ``run_segment`` (one fused Poisson-window pass); ``name`` is the
    resolved implementation reported in solver diagnostics.
    """

    name: str

    def spmm(self, block: FloatArray) -> FloatArray:
        """One ``block @ P`` product."""
        ...

    def run_segment(
        self,
        v: FloatArray,
        weights: FloatArray,
        left: int,
        right: int,
        tol: float,
        progress: "Callable[[int], None] | None" = None,
    ) -> "SegmentResult":
        """Run one Poisson-window segment."""
        ...


@runtime_checkable
class SchedulerPolicy(Protocol):
    """A multi-battery load-routing policy, checked by shape.

    The registry of :mod:`repro.multibattery.policies` ships class-based
    policies, but the product-space construction and the simulator only
    use this surface -- a structurally conforming object routes current
    without subclassing :class:`~repro.multibattery.policies.SchedulingPolicy`.
    """

    name: str

    def n_phases(self, n_batteries: int) -> int:
        """Number of phase-clock states adjoined to the product space."""
        ...

    def phase_generator(self, n_batteries: int) -> FloatArray:
        """Generator matrix of the policy's phase clock."""
        ...

    def routing_weights(
        self, levels: FloatArray, alive: npt.NDArray[np.bool_]
    ) -> FloatArray:
        """Per-battery routing weights for every charge configuration."""
        ...

    def is_symmetric(self, n_batteries: int) -> bool:
        """Whether the routing is invariant under battery permutations."""
        ...

    def key(self) -> tuple[Any, ...]:
        """Hashable fingerprint of the policy (name and parameters)."""
        ...


@runtime_checkable
class SweepExecutor(Protocol):
    """An execution backend for sweep chunks, checked by shape.

    :class:`~repro.engine.executor.SerialChunkExecutor` and
    :class:`~repro.engine.executor.ProcessChunkExecutor` are the shipped
    implementations (registered as ``"serial"`` / ``"process"``); a
    distributed backend conforms by submitting opaque chunk tasks and
    reporting their outcomes -- the retry/split/degrade driver of
    :func:`~repro.engine.executor.execute_chunks` runs unchanged on top.
    Tasks and outcomes are deliberately ``Any`` here: this module imports
    no engine types.
    """

    name: str

    @property
    def capacity(self) -> int:
        """Number of tasks the backend accepts in flight at once."""
        ...

    def submit(self, task: Any) -> None:
        """Start (or queue) one chunk task."""
        ...

    def poll(self, timeout: float | None = None) -> list[Any]:
        """Wait up to *timeout* seconds and return completed outcomes."""
        ...

    def shutdown(self) -> None:
        """Release the backend's resources (kill in-flight work if needed)."""
        ...


@runtime_checkable
class TraceSink(Protocol):
    """A destination for finished trace spans, checked by shape.

    :class:`~repro.obs.trace.JsonlTraceSink` is the shipped
    implementation; anything that accepts flat span records -- an
    OpenTelemetry bridge, a ring buffer, a test double -- conforms by
    implementing these two methods.  Records are plain mappings (the
    :meth:`repro.obs.trace.Span.as_record` shape: ``name``, ``span_id``,
    ``parent_id``, ``start``, ``end``, ``pid`` and optional ``attrs``);
    this module imports no obs types, mirroring how the executor seam
    stays engine-free.
    """

    def emit(self, record: "Mapping[str, Any]") -> None:
        """Accept one finished span record."""
        ...

    def flush(self) -> None:
        """Persist anything buffered (called at export/shutdown)."""
        ...


@runtime_checkable
class DiscretizedChain(Protocol):
    """The chain object every discretisation backend hands the engine.

    ``DiscretizedKiBaMRM``, ``DiscretizedMultiBatterySystem`` and
    ``LumpedMultiBatterySystem`` all satisfy this shape; solvers and the
    workspace depend only on it.
    """

    @property
    def generator(self) -> Any:
        """The CTMC generator (CSR matrix or :class:`GeneratorOperator`)."""
        ...

    @property
    def initial_distribution(self) -> FloatArray:
        """Probability vector over the chain's states at time zero."""
        ...

    @property
    def empty_states(self) -> IntArray:
        """Indices of the absorbing system-failure states."""
        ...

    @property
    def n_states(self) -> int:
        """Number of states of the chain."""
        ...

    @property
    def n_nonzero(self) -> int:
        """Number of structural non-zeros of the generator."""
        ...
