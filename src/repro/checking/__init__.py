"""Machine-checked correctness contracts for the reproduction.

The library keeps three interchangeable chain representations (assembled
CSR, matrix-free Kronecker operator, lumped symmetry quotient) and three
interchangeable kernels numerically equivalent.  The invariants behind
that equivalence -- zero row sums, non-negative off-diagonals,
uniformisation-rate dominance, no silent dense escape, registered
fingerprint fields, schema'd diagnostics keys -- used to live in scattered
runtime asserts.  This package makes them first-class artifacts:

* :mod:`repro.checking.contracts` -- the ``REPRO_CHECKS=strict|warn|off``
  toggle that decides whether structural validators (see
  :mod:`repro.markov.validate`) raise, warn or stay out of the way.
* :mod:`repro.checking.dense` -- the single allowlisted, size-guarded
  sparse-to-dense boundary (:func:`dense_fallback`); lint rule RPR001
  forbids ``.toarray()`` everywhere else.
* :mod:`repro.checking.fingerprints` -- the central registry every
  dataclass field of :class:`~repro.engine.problem.LifetimeProblem` /
  :class:`~repro.engine.sweep.SweepSpec` subtypes must appear in, as
  either fingerprint-relevant or fingerprint-exempt (lint rule RPR003).
* :mod:`repro.checking.protocols` -- structural :class:`typing.Protocol`
  definitions of the plug points (generator operators, uniformisation
  kernels, scheduler policies, discretised chains) so alternative
  implementations are checked by shape, not by inheritance.

The matching static passes live in ``tools/repro_lint.py`` (run as
``python -m tools.repro_lint src tests benchmarks``) and in the strict
mypy configuration of ``pyproject.toml``.
"""

from __future__ import annotations

from repro.checking.contracts import (
    CHECK_MODES,
    ContractViolationWarning,
    checks_mode,
    enforce,
    override_checks,
)
from repro.checking.dense import DEFAULT_DENSE_LIMIT, DenseFallbackError, dense_fallback
from repro.checking.fingerprints import (
    EXECUTION_POLICY_EXEMPT,
    FINGERPRINT_FIELDS,
    FingerprintRegistryError,
    audit_fingerprint_registry,
    registered_fields,
)
from repro.checking.protocols import (
    DiscretizedChain,
    FloatArray,
    GeneratorLike,
    GeneratorOperator,
    IntArray,
    SchedulerPolicy,
    SweepExecutor,
    UniformizationKernel,
)

__all__ = [
    "CHECK_MODES",
    "DEFAULT_DENSE_LIMIT",
    "ContractViolationWarning",
    "DenseFallbackError",
    "DiscretizedChain",
    "EXECUTION_POLICY_EXEMPT",
    "FINGERPRINT_FIELDS",
    "FingerprintRegistryError",
    "FloatArray",
    "GeneratorLike",
    "GeneratorOperator",
    "IntArray",
    "SchedulerPolicy",
    "SweepExecutor",
    "UniformizationKernel",
    "audit_fingerprint_registry",
    "checks_mode",
    "dense_fallback",
    "enforce",
    "override_checks",
    "registered_fields",
]
