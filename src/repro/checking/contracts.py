"""The ``REPRO_CHECKS`` contract toggle.

Structural chain validation (:mod:`repro.markov.validate`) is wired into
the chain-construction entry points -- ``discretize`` and
:class:`~repro.markov.uniformization.TransientPropagator` -- behind one
process-wide three-valued knob:

``REPRO_CHECKS=strict``
    Contract violations raise (:class:`~repro.markov.validate.ValidationError`).
    The CI test matrix runs in this mode.
``REPRO_CHECKS=warn``
    Violations are reported as :class:`ContractViolationWarning` and
    execution continues.  The local test default (set in
    ``tests/conftest.py``).
``REPRO_CHECKS=off``
    The validators are not invoked at all; the only residual cost is one
    environment lookup per guarded entry (gated under 1% of a 52k-state
    solve by ``benchmarks/bench_kernels.py``).  The library and benchmark
    default.

The environment variable is re-read on every :func:`checks_mode` call so
tests can flip modes with ``monkeypatch.setenv``; :func:`override_checks`
offers a scoped in-process override that wins over the environment.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterator

__all__ = [
    "CHECK_MODES",
    "ContractViolationWarning",
    "checks_mode",
    "enforce",
    "override_checks",
]

#: The supported values of the ``REPRO_CHECKS`` knob.
CHECK_MODES = ("strict", "warn", "off")

#: Name of the controlling environment variable.
ENV_VAR = "REPRO_CHECKS"

#: Mode used when the environment variable is unset: the validators stay
#: out of production hot paths unless explicitly requested.
DEFAULT_MODE = "off"

_override: str | None = None


class ContractViolationWarning(UserWarning):
    """A structural contract was violated under ``REPRO_CHECKS=warn``."""


def checks_mode() -> str:
    """Return the active checking mode (``"strict"``, ``"warn"`` or ``"off"``).

    A scoped :func:`override_checks` wins over the environment; an
    unrecognised environment value raises immediately rather than being
    silently treated as one of the modes.
    """
    if _override is not None:
        return _override
    raw = os.environ.get(ENV_VAR, DEFAULT_MODE).strip().lower()
    if raw not in CHECK_MODES:
        raise ValueError(
            f"{ENV_VAR}={raw!r} is not a valid checking mode; expected one of {CHECK_MODES}"
        )
    return raw


@contextmanager
def override_checks(mode: str) -> "Iterator[None]":
    """Force the checking *mode* within a ``with`` block (re-entrant).

    Used by the test fixtures and by callers that need a deterministic
    mode regardless of the ambient environment.
    """
    global _override
    if mode not in CHECK_MODES:
        raise ValueError(f"{mode!r} is not a valid checking mode; expected one of {CHECK_MODES}")
    previous = _override
    _override = mode
    try:
        yield
    finally:
        _override = previous


def enforce(error: Exception, *, mode: str | None = None) -> None:
    """Report a contract violation according to the active mode.

    ``strict`` raises *error*, ``warn`` emits it as a
    :class:`ContractViolationWarning` (preserving the message), ``off``
    does nothing.  Callers that already know the mode can pass it to save
    the lookup.
    """
    active = checks_mode() if mode is None else mode
    if active == "strict":
        raise error
    if active == "warn":
        warnings.warn(
            f"{type(error).__name__}: {error}", ContractViolationWarning, stacklevel=3
        )
