"""Central registry of fingerprint-relevant problem/sweep fields.

The sweep cache (:mod:`repro.engine.sweep`) keys solved scenarios by a
content fingerprint derived from :meth:`LifetimeProblem.chain_key` plus
the solve knobs.  The recurring bug class this registry kills: a new
dataclass field lands on :class:`~repro.engine.problem.LifetimeProblem`,
:class:`~repro.multibattery.problem.MultiBatteryProblem` or
:class:`~repro.engine.sweep.SweepSpec` without anyone deciding whether it
changes the answer -- and the cache silently serves stale results (if it
mattered) or needlessly misses (if it did not).

Every field must therefore be declared here, exactly once per class, as
either **relevant** (it feeds the fingerprint) or **exempt** (it provably
cannot change the solved curve: labels, presentation metadata, and the
knobs whose whole design contract is numerical equivalence -- transient
mode, kernel, chain backend).  Two enforcement layers read this table:

* lint rule RPR003 (``tools/repro_lint.py``) parses the literal below and
  flags any dataclass field of these classes (or their subtypes) that is
  missing from it, at review time;
* :func:`audit_fingerprint_registry` compares the table against the live
  ``dataclasses.fields`` at test time, so a *stale* entry (field renamed
  or removed) fails too.

``FINGERPRINT_FIELDS`` must stay a pure literal of string tuples -- the
lint pass reads it with ``ast.literal_eval`` and never imports this
package.
"""

from __future__ import annotations

__all__ = [
    "EXECUTION_POLICY_EXEMPT",
    "FINGERPRINT_FIELDS",
    "TRACE_EXEMPT",
    "FingerprintRegistryError",
    "audit_fingerprint_registry",
    "registered_fields",
]

#: Field declarations per class: ``relevant`` fields feed the scenario
#: fingerprint (via ``chain_key`` or the solve-knob tail), ``exempt``
#: fields are certified not to change the solved lifetime curve.
FINGERPRINT_FIELDS = {
    "LifetimeProblem": {
        "relevant": (
            "workload",
            "battery",
            "times",
            "delta",
            "epsilon",
            "n_runs",
            "seed",
            "horizon",
        ),
        "exempt": (
            # Presentation only: never touches the numerics.
            "label",
            "metadata",
            # Equivalence-contract knobs: incremental vs single-pass and
            # scipy vs compiled are gated bit-compatible, so the cache
            # must serve across them.
            "transient_mode",
            "kernel",
        ),
    },
    "MultiBatteryProblem": {
        "relevant": (
            "batteries",
            "policy",
            "policy_params",
            "failures_to_die",
        ),
        "exempt": (
            # Assembled / matrix-free / lumped agree to 1e-10 by gate;
            # the backend choice must not fragment the cache.
            "backend",
        ),
    },
    "LifetimeQuery": {
        "relevant": (
            # The wrapped LifetimeProblem feeds the fingerprint through its
            # own registry entry; the method is hashed alongside it (exactly
            # as scenario_fingerprint does for sweeps).
            "problem",
            "method",
        ),
        "exempt": (
            # Presentation-only request tag.
            "label",
        ),
    },
    "SweepSpec": {
        "relevant": (
            "workloads",
            "batteries",
            "times",
            "deltas",
            "methods",
            "policies",
            "failures_to_die",
            "epsilon",
            "n_runs",
            "horizon",
            "seed",
        ),
        "exempt": (
            "transient_mode",
            "kernel",
            # Execution policy (retries, timeouts, backoff, failure mode):
            # how hard the driver tries cannot change the curve, and a
            # retried scenario must hit the cache entry its first attempt
            # would have written.
            "execution",
            # Observability: whether (and how verbosely) a sweep was
            # traced cannot change its results, and a traced re-run must
            # be served from the untraced run's cache entries.
            "trace",
        ),
    },
}

#: Execution-policy fields that must stay fingerprint-*exempt* forever:
#: :func:`audit_fingerprint_registry` fails if any of them migrates into a
#: ``relevant`` tuple, so retry/timeout/failure-mode knobs provably never
#: change sweep cache keys.
EXECUTION_POLICY_EXEMPT = {
    "SweepSpec": ("execution",),
}

#: Trace knobs that must stay fingerprint-*exempt* forever, for the same
#: reason as :data:`EXECUTION_POLICY_EXEMPT`: observing a sweep (the
#: ``REPRO_TRACE`` mode carried on the spec) cannot change its curves, so
#: a traced re-run must hit the cache entries an untraced run wrote.
TRACE_EXEMPT = {
    "SweepSpec": ("trace",),
}


class FingerprintRegistryError(RuntimeError):
    """The registry and the live dataclass definitions drifted apart."""


def registered_fields(class_name: str) -> frozenset[str]:
    """All declared field names (relevant and exempt) of *class_name*."""
    try:
        entry = FINGERPRINT_FIELDS[class_name]
    except KeyError:
        raise FingerprintRegistryError(
            f"{class_name!r} has no fingerprint registry entry; declare its "
            "fields in repro.checking.fingerprints.FINGERPRINT_FIELDS"
        ) from None
    return frozenset(entry["relevant"]) | frozenset(entry["exempt"])


def _registry_lineage(cls: type) -> list[str]:
    """Registry entries applicable to *cls*, base-first."""
    return [base.__name__ for base in reversed(cls.__mro__) if base.__name__ in FINGERPRINT_FIELDS]


def audit_fingerprint_registry() -> None:
    """Cross-check the registry against the live dataclass definitions.

    Raises :class:`FingerprintRegistryError` when a dataclass field of a
    registered class is undeclared, declared twice (relevant *and*
    exempt), or when the registry names a field that no longer exists.
    """
    import dataclasses

    from repro.engine.problem import LifetimeProblem
    from repro.engine.sweep import SweepSpec
    from repro.multibattery.problem import MultiBatteryProblem
    from repro.service.query import LifetimeQuery

    classes: dict[str, type] = {
        "LifetimeProblem": LifetimeProblem,
        "LifetimeQuery": LifetimeQuery,
        "MultiBatteryProblem": MultiBatteryProblem,
        "SweepSpec": SweepSpec,
    }
    problems: list[str] = []
    for name, entry in FINGERPRINT_FIELDS.items():
        if name not in classes:
            problems.append(f"registry entry {name!r} matches no audited class")
            continue
        overlap = set(entry["relevant"]) & set(entry["exempt"])
        if overlap:
            problems.append(
                f"{name}: fields declared both relevant and exempt: {sorted(overlap)}"
            )
    for name, cls in classes.items():
        actual = {field.name for field in dataclasses.fields(cls)}
        declared: set[str] = set()
        for entry_name in _registry_lineage(cls):
            declared |= set(registered_fields(entry_name))
        missing = actual - declared
        if missing:
            problems.append(
                f"{name}: undeclared dataclass fields {sorted(missing)}; add each "
                "to FINGERPRINT_FIELDS as fingerprint-relevant or fingerprint-exempt"
            )
        if name in FINGERPRINT_FIELDS:
            stale = set(registered_fields(name)) - actual
            if stale:
                problems.append(
                    f"{name}: registry names unknown fields {sorted(stale)} "
                    "(renamed or removed?)"
                )
    # Execution-policy knobs must stay exempt: if one ever migrates into a
    # ``relevant`` tuple, retried sweeps would stop hitting the cache
    # entries their first attempts wrote (and old caches would go stale).
    for name, exempt_fields in EXECUTION_POLICY_EXEMPT.items():
        entry = FINGERPRINT_FIELDS.get(name, {"relevant": (), "exempt": ()})
        for field_name in exempt_fields:
            if field_name in entry["relevant"]:
                problems.append(
                    f"{name}: execution-policy field {field_name!r} must stay "
                    "fingerprint-exempt (declared relevant)"
                )
            elif field_name not in entry["exempt"]:
                problems.append(
                    f"{name}: execution-policy field {field_name!r} is missing "
                    "from the exempt declaration"
                )
    # Trace knobs likewise: a traced re-run must hit the cache entries an
    # untraced run wrote, so the trace mode can never enter a fingerprint.
    for name, exempt_fields in TRACE_EXEMPT.items():
        entry = FINGERPRINT_FIELDS.get(name, {"relevant": (), "exempt": ()})
        for field_name in exempt_fields:
            if field_name in entry["relevant"]:
                problems.append(
                    f"{name}: trace field {field_name!r} must stay "
                    "fingerprint-exempt (declared relevant)"
                )
            elif field_name not in entry["exempt"]:
                problems.append(
                    f"{name}: trace field {field_name!r} is missing "
                    "from the exempt declaration"
                )
    if problems:
        raise FingerprintRegistryError("; ".join(problems))
