"""The single sanctioned sparse-to-dense boundary.

Dense O(n^2) materialisation of a chain is occasionally the right tool --
``expm`` cross-checks, direct LU steady-state solves, embedded-chain
analyses on workload-sized models -- but it must never happen *silently*
on a product-space chain (a 52k-state generator is ~21 GiB dense; the 1M
state banks do not fit in any memory).  Every dense conversion in the
library therefore goes through :func:`dense_fallback`, which refuses
chains above an explicit state-count limit with an actionable error.

Lint rule RPR001 (``tools/repro_lint.py``) allowlists exactly this module
for ``.toarray()`` calls, so a new unguarded dense escape cannot land
unnoticed.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt
import scipy.sparse as sp

__all__ = ["DEFAULT_DENSE_LIMIT", "DenseFallbackError", "dense_fallback"]

#: Default state-count bound of :func:`dense_fallback`: 8192 states is a
#: 512 MiB dense generator, the upper end of what the dense algorithms
#: behind the fallback (``expm``, LU solves) are sensible for anyway.
DEFAULT_DENSE_LIMIT = 8192


class DenseFallbackError(ValueError):
    """A chain was too large for a dense O(n^2) materialisation."""


def dense_fallback(
    generator: Any, limit: int = DEFAULT_DENSE_LIMIT
) -> npt.NDArray[np.float64]:
    """Return *generator* as a dense array, refusing chains above *limit*.

    Accepts scipy sparse matrices, dense arrays (validated against the
    same limit for symmetry) and matrix-free operators exposing
    ``to_csr()``.  Raises :class:`DenseFallbackError` -- naming the size,
    the limit and the projected allocation -- when the chain has more than
    *limit* states, instead of letting ``.toarray()`` silently allocate
    O(n^2) memory.
    """
    n = int(generator.shape[0])
    if n > limit:
        projected = n * n * 8 / 2**30
        raise DenseFallbackError(
            f"refusing dense fallback for a {n}-state chain (limit {limit}): "
            f"a dense generator would allocate ~{projected:.1f} GiB; use the "
            "sparse/uniformisation path, or raise the limit explicitly if the "
            "dense algorithm is intended"
        )
    if sp.issparse(generator):
        return np.asarray(generator.toarray(), dtype=float)
    to_csr = getattr(generator, "to_csr", None)
    if to_csr is not None and not isinstance(generator, np.ndarray):
        return np.asarray(to_csr().toarray(), dtype=float)
    return np.asarray(generator, dtype=float)
