"""Exact accumulated-reward distributions for two-level reward structures.

For a homogeneous MRM whose reward rates take only two distinct values
``r_lo < r_hi`` the accumulated reward is an affine function of the
*occupation time* ``O(t)`` of the high-reward states,

.. math::

   Y(t) = r_{lo}\\, t + (r_{hi} - r_{lo})\\, O(t),

and the distribution of ``O(t)`` can be computed **exactly** with the
uniformisation-based algorithm of De Souza e Silva & Gail / Sericola (the
algorithm referenced as [25] in the paper).  The key identity is: given
``N(t) = n`` Poisson events of the uniformised chain and a path that visits
``m`` high-reward states among its ``n + 1`` sojourns,

.. math::

   \\Pr\\{O(t) > x\\,t \\mid N(t) = n,\\; M_n = m\\}
       \\;=\\; \\sum_{k=0}^{m-1} \\binom{n}{k} x^k (1-x)^{n-k}
       \\;=\\; \\Pr\\{\\mathrm{Bin}(n, x) \\le m - 1\\},

because, conditionally, the sojourn lengths are the spacings of ``n``
uniform points on ``[0, t]`` and only the *number* of high-reward sojourns
matters.  Averaging over the path distribution therefore only requires the
distribution of the count ``M_n``, which satisfies a simple forward
recursion over the uniformised DTMC.

This algorithm provides the exact reference curves for the single-well
(``c = 1``) on/off experiments and an independent correctness oracle for
the Markovian approximation of :mod:`repro.core`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.stats import binom

from repro.markov.generator import uniformized_matrix, validate_generator
from repro.markov.poisson import cached_poisson_weights
from repro.markov.uniformization import uniformization_rate

__all__ = [
    "occupation_time_exceeds",
    "occupation_time_distribution",
    "two_level_reward_distribution",
    "two_level_lifetime_cdf",
]

#: Probability mass below which count bins are pruned from the recursion.
_PRUNE_THRESHOLD = 1e-16


def occupation_time_exceeds(
    generator,
    initial_distribution,
    high_states,
    queries: Sequence[tuple[float, float]],
    *,
    epsilon: float = 1e-10,
    validate: bool = True,
) -> np.ndarray:
    """Return ``Pr{O(t) > x * t}`` for every query ``(t, x)``.

    Parameters
    ----------
    generator:
        Generator matrix of the (small) CTMC.
    initial_distribution:
        Initial probability vector.
    high_states:
        Indices of the states whose occupation time ``O(t)`` is measured.
    queries:
        Sequence of ``(time, fraction)`` pairs; the fraction ``x`` is
        clamped to ``[0, 1]`` (``x <= 0`` gives ``Pr{O > 0}``, ``x >= 1``
        gives 0).
    epsilon:
        Truncation error bound for the Poisson series (per query).
    validate:
        Whether to validate the generator and initial distribution.

    Returns
    -------
    numpy.ndarray
        One probability per query, in the order given.
    """
    generator = np.asarray(generator, dtype=float)
    alpha = np.asarray(initial_distribution, dtype=float).ravel()
    n_states = generator.shape[0]
    if validate:
        validate_generator(generator)
        if not np.isclose(alpha.sum(), 1.0, atol=1e-9) or np.any(alpha < -1e-12):
            raise ValueError("the initial distribution must be a probability vector")
    high = np.zeros(n_states, dtype=bool)
    high[np.asarray(list(high_states), dtype=int)] = True

    queries = [(float(t), float(x)) for t, x in queries]
    if any(t < 0 for t, _ in queries):
        raise ValueError("query times must be non-negative")
    results = np.zeros(len(queries))

    # Trivial queries (x >= 1 stays 0; t == 0 handled analytically).
    active_queries: list[tuple[int, float, float]] = []
    initial_high_probability = float(alpha[high].sum())
    for index, (time, fraction) in enumerate(queries):
        if fraction >= 1.0:
            results[index] = 0.0
        elif time == 0.0:
            results[index] = 0.0 if fraction >= 0.0 else 1.0
        else:
            active_queries.append((index, time, max(fraction, 0.0)))
    if not active_queries:
        return results

    rate = uniformization_rate(generator)
    probability_matrix = np.asarray(uniformized_matrix(generator, rate), dtype=float)

    windows = {
        index: cached_poisson_weights(rate * time, epsilon)
        for index, time, _ in active_queries
    }
    max_right = max(window.right for window in windows.values())

    low_columns = ~high

    # d[m, i] = Pr{M_n = m, Z_n = i}; the count support [m_lo, m_hi] is
    # tracked explicitly and grows by at most one per step.
    counts = np.zeros((max_right + 2, n_states))
    counts[0, low_columns] = alpha[low_columns]
    counts[1, high] = alpha[high]
    m_lo, m_hi = (0, 1) if initial_high_probability > 0 else (0, 0)
    if float(alpha[low_columns].sum()) <= 0.0:
        m_lo = 1

    for n in range(0, max_right + 1):
        support = slice(m_lo, m_hi + 1)
        mass_per_count = counts[support].sum(axis=1)
        m_values = np.arange(m_lo, m_hi + 1)

        for index, time, fraction in active_queries:
            window = windows[index]
            if window.left <= n <= window.right:
                # Pr{O > x t | N = n} = E[ BinCDF(M_n - 1; n, x) ].
                conditional = binom.cdf(m_values - 1, n, fraction)
                results[index] += window.weights[n - window.left] * float(
                    mass_per_count @ conditional
                )

        if n == max_right:
            break

        # Advance the count/state distribution by one uniformised step.
        propagated = counts[m_lo : m_hi + 1] @ probability_matrix
        counts[m_lo : m_hi + 1, :] = 0.0
        counts[m_lo : m_hi + 1, low_columns] = propagated[:, low_columns]
        counts[m_lo + 1 : m_hi + 2, high] = propagated[:, high]
        m_hi = min(m_hi + 1, counts.shape[0] - 1)
        # Prune negligible mass at the edges to keep the support small; the
        # pruned rows are cleared so they cannot leak stale values back in.
        while m_hi > m_lo and counts[m_hi].sum() < _PRUNE_THRESHOLD:
            counts[m_hi] = 0.0
            m_hi -= 1
        while m_lo < m_hi and counts[m_lo].sum() < _PRUNE_THRESHOLD:
            counts[m_lo] = 0.0
            m_lo += 1

    return np.clip(results, 0.0, 1.0)


def occupation_time_distribution(
    generator,
    initial_distribution,
    high_states,
    time: float,
    fractions,
    *,
    epsilon: float = 1e-10,
) -> np.ndarray:
    """Return ``Pr{O(t) > x * t}`` for a single time and several fractions *x*."""
    fractions = np.atleast_1d(np.asarray(fractions, dtype=float))
    queries = [(time, float(x)) for x in fractions]
    return occupation_time_exceeds(generator, initial_distribution, high_states, queries, epsilon=epsilon)


def _split_rewards(rewards: np.ndarray) -> tuple[float, float, np.ndarray]:
    """Return ``(r_lo, r_hi, high_mask)`` for a two-level reward vector."""
    distinct = np.unique(rewards)
    if distinct.size > 2:
        raise ValueError(
            "the exact occupation-time algorithm requires at most two distinct reward "
            f"rates, got {distinct.size}"
        )
    if distinct.size == 1:
        return float(distinct[0]), float(distinct[0]), np.zeros(rewards.size, dtype=bool)
    r_lo, r_hi = float(distinct[0]), float(distinct[1])
    return r_lo, r_hi, rewards == r_hi


def two_level_reward_distribution(
    generator,
    initial_distribution,
    rewards,
    time: float,
    thresholds,
    *,
    epsilon: float = 1e-10,
) -> np.ndarray:
    """Return ``Pr{Y(t) > y}`` for every threshold *y*, exactly.

    The reward vector must take at most two distinct values.
    """
    rewards = np.asarray(rewards, dtype=float).ravel()
    thresholds = np.atleast_1d(np.asarray(thresholds, dtype=float))
    r_lo, r_hi, high = _split_rewards(rewards)
    if r_hi == r_lo:
        # Deterministic accumulation.
        return (r_lo * time > thresholds).astype(float)
    fractions = (thresholds - r_lo * time) / ((r_hi - r_lo) * time)
    return occupation_time_distribution(
        generator, initial_distribution, np.nonzero(high)[0], time, fractions, epsilon=epsilon
    )


def two_level_lifetime_cdf(
    generator,
    initial_distribution,
    rewards,
    capacity: float,
    times,
    *,
    epsilon: float = 1e-10,
) -> np.ndarray:
    """Return the exact lifetime CDF of a single-well battery (``c = 1``).

    The battery is empty at time ``t`` once the accumulated consumption
    ``Y(t)`` reaches the capacity ``C``; because ``Y`` is non-decreasing
    this equals the first-passage (lifetime) CDF.  Only two-level reward
    structures (for example the on/off model) are supported.
    """
    rewards = np.asarray(rewards, dtype=float).ravel()
    if np.any(rewards < 0):
        raise ValueError("reward rates must be non-negative for a battery model")
    if capacity <= 0:
        raise ValueError("the capacity must be positive")
    times = np.atleast_1d(np.asarray(times, dtype=float))
    r_lo, r_hi, high = _split_rewards(rewards)
    if r_hi == r_lo:
        return (r_lo * times >= capacity).astype(float)
    queries = []
    for time in times:
        if time <= 0.0:
            queries.append((0.0, 1.0))
            continue
        fraction = (capacity - r_lo * time) / ((r_hi - r_lo) * time)
        queries.append((float(time), float(fraction)))
    return occupation_time_exceeds(
        generator, initial_distribution, np.nonzero(high)[0], queries, epsilon=epsilon
    )
