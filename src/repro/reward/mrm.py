"""Homogeneous Markov reward models.

A homogeneous MRM is a CTMC together with a reward rate ``r_i`` per state;
the accumulated reward is ``Y(t) = int_0^t r_{X(s)} ds`` (Section 4.1 of the
paper).  For battery models the reward is the consumed charge; the
distribution of ``Y(t)`` is the performability distribution whose
computation the paper is about.

This module provides the container plus the analyses that have simple,
uncontroversial algorithms: the expected accumulated reward (an integral of
transient state probabilities) and dispatching to the exact two-level
algorithm of :mod:`repro.reward.occupation` where it applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.transient import cumulative_state_probabilities
from repro.reward.occupation import two_level_reward_distribution

__all__ = ["MarkovRewardModel"]


@dataclass(frozen=True)
class MarkovRewardModel:
    """A CTMC with one reward rate per state.

    Attributes
    ----------
    generator:
        CTMC generator matrix (dense, the workload chains are small).
    initial_distribution:
        Probability vector over the states at time zero.
    rewards:
        Reward rate of every state (non-negative for battery models, but
        negative rates are allowed by the container).
    state_names:
        Optional state labels.
    """

    generator: np.ndarray
    initial_distribution: np.ndarray
    rewards: np.ndarray
    state_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        generator = np.asarray(self.generator, dtype=float)
        initial = np.asarray(self.initial_distribution, dtype=float).ravel()
        rewards = np.asarray(self.rewards, dtype=float).ravel()
        n = generator.shape[0]
        if generator.shape != (n, n):
            raise ValueError("the generator must be square")
        if initial.size != n or rewards.size != n:
            raise ValueError("initial distribution and rewards must match the generator size")
        names = tuple(self.state_names) if self.state_names else tuple(str(i) for i in range(n))
        if len(names) != n:
            raise ValueError("number of state names does not match the generator size")
        object.__setattr__(self, "generator", generator)
        object.__setattr__(self, "initial_distribution", initial)
        object.__setattr__(self, "rewards", rewards)
        object.__setattr__(self, "state_names", names)

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of states."""
        return self.generator.shape[0]

    @property
    def distinct_rewards(self) -> np.ndarray:
        """The sorted distinct reward rates."""
        return np.unique(self.rewards)

    # ------------------------------------------------------------------
    def expected_accumulated_reward(self, time: float, *, n_points: int = 257) -> float:
        """Return ``E[Y(t)] = int_0^t pi(s) r ds``.

        The integral is evaluated from transient state probabilities on a
        fine grid; the integrand is smooth, so the trapezoidal rule is
        accurate.
        """
        occupancy = cumulative_state_probabilities(
            self.generator, self.initial_distribution, time, n_points=n_points
        )
        return float(occupancy @ self.rewards)

    def reward_ceiling(self, time: float) -> float:
        """Upper bound ``max_i r_i * t`` on the accumulated reward."""
        return float(np.max(self.rewards) * time)

    def reward_floor(self, time: float) -> float:
        """Lower bound ``min_i r_i * t`` on the accumulated reward."""
        return float(np.min(self.rewards) * time)

    # ------------------------------------------------------------------
    def accumulated_reward_exceeds(self, time: float, threshold: float, *, epsilon: float = 1e-10) -> float:
        """Return ``Pr{Y(t) > threshold}`` exactly, for two-level reward structures.

        Only models whose rewards take at most two distinct values are
        supported (the exact algorithm of
        :mod:`repro.reward.occupation`); other models should use the
        discretisation-based approaches (:mod:`repro.reward.discretisation`
        or the Markovian approximation of :mod:`repro.core`).
        """
        distinct = self.distinct_rewards
        if distinct.size > 2:
            raise NotImplementedError(
                "the exact algorithm is only implemented for rewards with at most two "
                f"distinct values (got {distinct.size}); use the discretisation-based solvers"
            )
        return float(
            two_level_reward_distribution(
                self.generator,
                self.initial_distribution,
                self.rewards,
                time,
                np.array([threshold]),
                epsilon=epsilon,
            )[0]
        )
