"""Reward-inhomogeneous Markov reward models.

Section 4.1 of the paper introduces MRMs whose generator and reward rates
may depend on the current level of accumulated reward, ``Q(y)`` and
``R(y)``; the KiBaMRM is the special case with two reward variables, a
level-independent generator and the KiBaM reward rates.  The
:class:`InhomogeneousMRM` container captures the general class (it is what
the Markovian approximation of Section 5 formally operates on), and
:func:`from_kibamrm` maps a :class:`~repro.core.kibamrm.KiBaMRM` onto it.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

__all__ = ["InhomogeneousMRM", "from_kibamrm"]


@dataclass(frozen=True)
class InhomogeneousMRM:
    """A reward-inhomogeneous MRM with (up to) two accumulated rewards.

    Attributes
    ----------
    n_states:
        Number of CTMC states.
    generator_at:
        Callable ``(y1, y2) -> ndarray`` returning the generator matrix for
        the given accumulated-reward levels.
    reward_rates_at:
        Callable ``(y1, y2) -> ndarray`` of shape ``(n_states, 2)`` with the
        reward rates ``R(y1, y2)``.
    initial_distribution:
        Initial probability vector over the CTMC states.
    initial_rewards:
        Initial values ``(a1, a2)`` of the accumulated rewards.
    lower_bounds, upper_bounds:
        Bounds ``(l1, l2)`` and ``(u1, u2)`` of the accumulated rewards.
    """

    n_states: int
    generator_at: Callable[[float, float], np.ndarray]
    reward_rates_at: Callable[[float, float], np.ndarray]
    initial_distribution: np.ndarray
    initial_rewards: tuple[float, float]
    lower_bounds: tuple[float, float]
    upper_bounds: tuple[float, float]

    def __post_init__(self) -> None:
        if self.n_states < 1:
            raise ValueError("the model needs at least one state")
        initial = np.asarray(self.initial_distribution, dtype=float).ravel()
        if initial.size != self.n_states:
            raise ValueError("initial distribution size does not match n_states")
        if np.any(initial < -1e-12) or not np.isclose(initial.sum(), 1.0, atol=1e-9):
            raise ValueError("the initial distribution must be a probability vector")
        lower = tuple(float(b) for b in self.lower_bounds)
        upper = tuple(float(b) for b in self.upper_bounds)
        if any(lo > up for lo, up in zip(lower, upper)):
            raise ValueError("lower reward bounds must not exceed the upper bounds")
        start = tuple(float(a) for a in self.initial_rewards)
        if any(not lo - 1e-9 <= a <= up + 1e-9 for a, lo, up in zip(start, lower, upper)):
            raise ValueError("the initial rewards must lie within the bounds")
        object.__setattr__(self, "initial_distribution", initial)
        object.__setattr__(self, "lower_bounds", lower)
        object.__setattr__(self, "upper_bounds", upper)
        object.__setattr__(self, "initial_rewards", start)

    # ------------------------------------------------------------------
    def reward_derivatives(self, state: int, y1: float, y2: float) -> tuple[float, float]:
        """Return ``(dy1/dt, dy2/dt)`` while residing in *state* at ``(y1, y2)``.

        This is the right-hand side of the reward differential equations of
        Section 4.1 (battery case).
        """
        rates = np.asarray(self.reward_rates_at(y1, y2), dtype=float)
        return float(rates[state, 0]), float(rates[state, 1])

    def generator(self, y1: float, y2: float) -> np.ndarray:
        """Return ``Q(y1, y2)`` as a dense array."""
        return np.asarray(self.generator_at(y1, y2), dtype=float)


def from_kibamrm(model) -> InhomogeneousMRM:
    """Express a :class:`~repro.core.kibamrm.KiBaMRM` as an :class:`InhomogeneousMRM`.

    The generator of the KiBaMRM does not depend on the reward levels (the
    workload evolves independently of the battery state); the reward rates
    are the KiBaM drain and transfer rates of Section 4.2.
    """
    workload = model.workload
    generator = workload.generator

    def generator_at(_y1: float, _y2: float) -> np.ndarray:
        return generator

    def reward_rates_at(y1: float, y2: float) -> np.ndarray:
        return model.reward_rate_matrix(y1, y2)

    upper1, upper2 = model.reward_bounds
    return InhomogeneousMRM(
        n_states=workload.n_states,
        generator_at=generator_at,
        reward_rates_at=reward_rates_at,
        initial_distribution=workload.initial_distribution,
        initial_rewards=model.initial_rewards,
        lower_bounds=(0.0, 0.0),
        upper_bounds=(upper1, upper2),
    )
