"""Explicit reward-discretisation scheme for homogeneous MRMs.

Section 5 of the paper discusses, as an alternative to the Markovian
approximation, the discretisation algorithm of Haverkort & Katoen [18]: time
and accumulated reward are discretised jointly and probability mass is
propagated over a (reward x state) grid.  The paper notes that the approach
requires (small) integer reward rates to be efficient.  This module
implements a straightforward operator-splitting variant of that scheme for
homogeneous MRMs with a single non-negative reward:

* one time step of length ``dt = delta / gcd_rate`` advances the CTMC part
  with the exact matrix exponential of the (small) workload generator,
* the reward part then shifts the probability mass of every state upward by
  ``r_i * dt / delta`` levels, which is an integer when the reward rates are
  commensurate with the chosen quantum.

Mass that reaches the top level (the reward bound, e.g. the battery
capacity) accumulates there, so the value at the top level is the
approximated ``Pr{Y(t) >= bound}`` -- for single-well batteries this is the
lifetime CDF.  The scheme is first-order in ``dt`` and serves as an
independent cross-check of the Markovian approximation; it is not the
recommended production solver.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.linalg

from repro.markov.generator import validate_generator

__all__ = ["discretised_reward_distribution"]


def _integer_shifts(rewards: np.ndarray, delta: float, dt: float) -> np.ndarray:
    """Return per-state level shifts, checking that they are integral."""
    shifts = rewards * dt / delta
    rounded = np.rint(shifts)
    if np.any(np.abs(shifts - rounded) > 1e-6):
        raise ValueError(
            "the reward rates are not commensurate with the chosen quantum: "
            f"per-step level shifts {shifts} are not integers; adjust delta or dt"
        )
    return rounded.astype(int)


def discretised_reward_distribution(
    generator,
    initial_distribution,
    rewards,
    bound: float,
    times,
    *,
    delta: float,
    dt: float | None = None,
) -> np.ndarray:
    """Return ``Pr{Y(t) >= bound}`` with the explicit discretisation scheme.

    Parameters
    ----------
    generator:
        Generator of the (small) workload CTMC.
    initial_distribution:
        Initial probability vector.
    rewards:
        Non-negative reward rate per state (consumption current).
    bound:
        Reward bound of interest (battery capacity, in the reward unit).
    times:
        Time points at which to report the probability.
    delta:
        Reward quantum.
    dt:
        Time step; defaults to ``delta / max(rewards)`` so that the fastest
        state advances exactly one level per step.  Every state's shift
        ``r_i * dt / delta`` must be an integer.

    Returns
    -------
    numpy.ndarray
        ``Pr{Y(t) >= bound}`` for every requested time point.
    """
    generator = np.asarray(generator, dtype=float)
    validate_generator(generator)
    alpha = np.asarray(initial_distribution, dtype=float).ravel()
    rewards = np.asarray(rewards, dtype=float).ravel()
    if np.any(rewards < 0):
        raise ValueError("reward rates must be non-negative")
    if bound <= 0:
        raise ValueError("the reward bound must be positive")
    if delta <= 0:
        raise ValueError("the reward quantum delta must be positive")
    times = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(times < 0):
        raise ValueError("times must be non-negative")

    max_rate = float(np.max(rewards))
    if max_rate <= 0:
        return np.zeros(times.size)
    if dt is None:
        dt = delta / max_rate
    shifts = _integer_shifts(rewards, delta, dt)

    n_levels = int(math.ceil(bound / delta)) + 1
    top = n_levels - 1
    n_states = generator.shape[0]
    transition = scipy.linalg.expm(generator * dt)

    # mass[level, state]; level `top` collects all mass at or above the bound.
    mass = np.zeros((n_levels, n_states))
    mass[0] = alpha

    order = np.argsort(times)
    results = np.zeros(times.size)
    n_steps_needed = int(math.ceil(float(times.max()) / dt + 1e-12))

    next_report = 0
    sorted_times = times[order]
    step = 0
    while True:
        elapsed = step * dt
        while next_report < sorted_times.size and sorted_times[next_report] <= elapsed + 1e-12:
            results[order[next_report]] = float(mass[top].sum())
            next_report += 1
        if step >= n_steps_needed or next_report >= sorted_times.size:
            break
        # CTMC part: exact transient step of length dt.
        mass = mass @ transition
        # Reward part: shift each state's column up by its per-step level count.
        shifted = np.zeros_like(mass)
        for state in range(n_states):
            shift = int(shifts[state])
            if shift == 0:
                shifted[:, state] += mass[:, state]
                continue
            shifted[shift:, state] += mass[:-shift, state] if shift < n_levels else 0.0
            # Mass pushed beyond the top level accumulates at the top.
            overflow = mass[max(n_levels - shift, 0) :, state].sum()
            shifted[top, state] += overflow
        mass = shifted
        step += 1

    # Report any remaining time points (beyond the last step boundary).
    while next_report < sorted_times.size:
        results[order[next_report]] = float(mass[top].sum())
        next_report += 1
    return np.clip(results, 0.0, 1.0)
