"""Markov reward models and accumulated-reward (performability) algorithms.

* :mod:`repro.reward.mrm` -- homogeneous Markov reward models: a CTMC plus a
  reward vector, with expected accumulated reward and the link to the
  accumulated-reward distribution algorithms.
* :mod:`repro.reward.inhomogeneous` -- reward-inhomogeneous MRMs with one or
  two reward variables (the class the KiBaMRM of Section 4.2 belongs to).
* :mod:`repro.reward.occupation` -- the exact uniformisation-based algorithm
  for the accumulated-reward distribution when the rewards take (at most)
  two distinct values, following De Souza e Silva & Gail / Sericola; this is
  the "exact" reference used for single-well on/off experiments.
* :mod:`repro.reward.discretisation` -- the explicit reward-discretisation
  scheme discussed (as an alternative) in Section 5 of the paper, for
  homogeneous MRMs with a single non-negative reward.
"""

from repro.reward.discretisation import discretised_reward_distribution
from repro.reward.inhomogeneous import InhomogeneousMRM, from_kibamrm
from repro.reward.mrm import MarkovRewardModel
from repro.reward.occupation import (
    occupation_time_distribution,
    two_level_reward_distribution,
)

__all__ = [
    "InhomogeneousMRM",
    "MarkovRewardModel",
    "discretised_reward_distribution",
    "from_kibamrm",
    "occupation_time_distribution",
    "two_level_reward_distribution",
]
