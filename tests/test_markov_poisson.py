"""Tests for the Fox--Glynn style Poisson weights."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import poisson as scipy_poisson

from repro.markov.poisson import PoissonWeights, fox_glynn, poisson_weights


class TestFoxGlynn:
    def test_zero_rate_single_weight(self):
        weights = fox_glynn(0.0)
        assert weights.left == 0
        assert weights.right == 0
        assert weights.weights[0] == pytest.approx(1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            fox_glynn(-1.0)

    @pytest.mark.parametrize("rate", [0.1, 1.0, 5.0, 25.0, 400.0, 12345.6])
    def test_matches_scipy_poisson(self, rate):
        weights = fox_glynn(rate, epsilon=1e-12)
        indices = np.arange(weights.left, weights.right + 1)
        reference = scipy_poisson.pmf(indices, rate)
        assert np.allclose(weights.weights, reference / reference.sum(), atol=1e-10)

    @pytest.mark.parametrize("rate", [0.5, 10.0, 1000.0, 50000.0])
    def test_total_mass_close_to_one(self, rate):
        weights = fox_glynn(rate, epsilon=1e-10)
        assert weights.total == pytest.approx(1.0, abs=1e-9)
        # The true mass outside the window must be tiny.
        outside = 1.0 - (
            scipy_poisson.cdf(weights.right, rate) - scipy_poisson.cdf(weights.left - 1, rate)
        )
        assert outside < 1e-8

    def test_window_contains_mode(self):
        rate = 300.0
        weights = fox_glynn(rate)
        assert weights.left <= int(rate) <= weights.right

    def test_weight_lookup_outside_window_is_zero(self):
        weights = fox_glynn(50.0)
        assert weights.weight(weights.left - 1) == 0.0
        assert weights.weight(weights.right + 1) == 0.0
        assert weights.weight(weights.left) > 0.0

    def test_len_matches_window(self):
        weights = fox_glynn(77.0)
        assert len(weights) == weights.right - weights.left + 1 == weights.weights.size

    def test_large_rate_window_is_narrow(self):
        rate = 40000.0
        weights = fox_glynn(rate, epsilon=1e-10)
        # The window should scale with sqrt(rate), not with rate.
        assert len(weights) < 40 * np.sqrt(rate)

    @given(rate=st.floats(min_value=0.01, max_value=5000.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_weights_are_a_distribution(self, rate):
        weights = poisson_weights(rate)
        assert np.all(weights.weights >= 0)
        assert weights.total == pytest.approx(1.0, abs=1e-8)
        assert weights.left >= 0

    def test_is_dataclass_with_rate(self):
        weights = fox_glynn(3.0)
        assert isinstance(weights, PoissonWeights)
        assert weights.rate == pytest.approx(3.0)
