"""Self-tests of the repository lint rules in ``tools/repro_lint.py``.

One violating snippet per rule (fed through :func:`lint_source`), the
pragma escape hatch, and a repo-wide run asserting the tree is clean --
the same invocation the CI static-analysis job performs.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from tools.repro_lint import RULES, Violation, lint_source, run_paths

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(violations: list[Violation]) -> list[str]:
    return [violation.rule for violation in violations]


# ----------------------------------------------------------------------
# RPR001 -- unguarded densification
# ----------------------------------------------------------------------


def test_rpr001_flags_toarray_on_any_matrix() -> None:
    violations = lint_source("dense = chain.generator.toarray()\n", "src/x.py")
    assert rules_of(violations) == ["RPR001"]
    assert "toarray" in violations[0].message


def test_rpr001_flags_todense_too() -> None:
    violations = lint_source("dense = matrix.todense()\n", "src/x.py")
    assert rules_of(violations) == ["RPR001"]


def test_rpr001_flags_asarray_of_chain_generators() -> None:
    violations = lint_source(
        "import numpy as np\ndense = np.asarray(chain.generator)\n", "src/x.py"
    )
    assert rules_of(violations) == ["RPR001"]


def test_rpr001_ignores_asarray_of_workload_generators() -> None:
    # Workload generators are dense-by-design (a handful of states);
    # normalising them through np.asarray is not an escape.
    violations = lint_source(
        "import numpy as np\ndense = np.asarray(workload.generator)\n", "src/x.py"
    )
    assert violations == []


def test_rpr001_allowlists_the_dense_boundary_module() -> None:
    source = "dense = generator.toarray()\n"
    assert rules_of(lint_source(source, "src/repro/checking/dense.py")) == []
    assert rules_of(lint_source(source, "src/repro/engine/solvers.py")) == ["RPR001"]


def test_rpr001_pragma_opts_out_one_line() -> None:
    source = "dense = small.toarray()  # repro-lint: allow RPR001 (bounded)\n"
    assert lint_source(source, "src/x.py") == []


# ----------------------------------------------------------------------
# RPR002 -- global-state RNG
# ----------------------------------------------------------------------


def test_rpr002_flags_global_rng_calls() -> None:
    source = (
        "import numpy as np\n"
        "np.random.seed(0)\n"
        "draw = np.random.uniform(size=3)\n"
    )
    assert rules_of(lint_source(source, "src/x.py")) == ["RPR002", "RPR002"]


def test_rpr002_allows_generator_construction() -> None:
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng(7)\n"
        "seq = np.random.SeedSequence(7)\n"
        "bits = np.random.PCG64(7)\n"
    )
    assert lint_source(source, "src/x.py") == []


# ----------------------------------------------------------------------
# RPR003 -- fingerprint registry coverage
# ----------------------------------------------------------------------


def test_rpr003_flags_an_unregistered_problem_field() -> None:
    source = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class LifetimeProblem:\n"
        "    sneaky_knob: float = 1.0\n"
    )
    violations = lint_source(source, "src/x.py")
    assert rules_of(violations) == ["RPR003"]
    assert "sneaky_knob" in violations[0].message


def test_rpr003_accepts_registered_fields() -> None:
    source = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class SweepSpec:\n"
        "    methods: tuple = ('auto',)\n"
        "    kernel: str = 'auto'\n"
    )
    assert lint_source(source, "src/x.py") == []


def test_rpr003_covers_subtypes_by_base_name() -> None:
    source = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class MultiBatteryProblem(LifetimeProblem):\n"
        "    rogue_field: int = 0\n"
    )
    assert rules_of(lint_source(source, "src/x.py")) == ["RPR003"]


# ----------------------------------------------------------------------
# RPR004 -- diagnostics schema
# ----------------------------------------------------------------------


def test_rpr004_flags_an_unknown_diagnostics_key() -> None:
    source = "diagnostics = {'made_up_key': 1}\n"
    violations = lint_source(source, "src/x.py")
    assert rules_of(violations) == ["RPR004"]
    assert "made_up_key" in violations[0].message


def test_rpr004_flags_subscript_stores() -> None:
    source = "diagnostics['another_fake'] = 2\n"
    assert rules_of(lint_source(source, "src/x.py")) == ["RPR004"]


def test_rpr004_accepts_schema_keys() -> None:
    source = (
        "diagnostics = {'delta': 0.1, 'n_states': 10}\n"
        "diagnostics['iterations'] = 15\n"
    )
    assert lint_source(source, "src/x.py") == []


# ----------------------------------------------------------------------
# whole-repo invariants
# ----------------------------------------------------------------------


def test_rules_table_is_complete() -> None:
    assert set(RULES) == {"RPR001", "RPR002", "RPR003", "RPR004"}


def test_repository_is_lint_clean() -> None:
    violations = run_paths(["src", "tests", "benchmarks"], root=REPO_ROOT)
    assert violations == [], "\n".join(v.render() for v in violations)


def test_module_entry_point_runs_clean() -> None:
    completed = subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "repro-lint: clean" in completed.stdout
