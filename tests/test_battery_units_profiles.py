"""Tests for unit conversions and load profiles."""

import numpy as np
import pytest

from repro.battery import units
from repro.battery.profiles import ConstantLoad, PiecewiseConstantLoad, SquareWaveLoad


class TestUnits:
    def test_mah_coulomb_roundtrip(self):
        assert units.coulombs_from_milliamp_hours(2000.0) == pytest.approx(7200.0)
        assert units.milliamp_hours_from_coulombs(7200.0) == pytest.approx(2000.0)
        assert units.milliamp_hours_from_coulombs(units.coulombs_from_milliamp_hours(123.4)) == pytest.approx(123.4)

    def test_paper_capacity_conversions(self):
        # The paper's 800 mAh cell phone battery is 2880 As.
        assert units.coulombs_from_milliamp_hours(800.0) == pytest.approx(2880.0)

    def test_time_conversions(self):
        assert units.seconds_from_hours(2.0) == pytest.approx(7200.0)
        assert units.hours_from_seconds(1800.0) == pytest.approx(0.5)
        assert units.seconds_from_minutes(91.0) == pytest.approx(5460.0)
        assert units.minutes_from_seconds(5460.0) == pytest.approx(91.0)

    def test_rate_conversions_match_paper(self):
        # k = 4.5e-5 /s corresponds to 1.96e-2 /h up to rounding in the paper.
        assert units.per_hour_from_per_second(4.5e-5) == pytest.approx(0.162, rel=1e-3)
        assert units.per_second_from_per_hour(units.per_hour_from_per_second(4.5e-5)) == pytest.approx(4.5e-5)

    def test_current_conversion(self):
        assert units.amperes_from_milliamperes(200.0) == pytest.approx(0.2)


class TestConstantLoad:
    def test_segments_cover_horizon(self):
        load = ConstantLoad(0.5)
        segments = list(load.segments(10.0))
        assert segments == [(10.0, 0.5)]
        assert load.current_at(3.0) == 0.5
        assert load.mean_current(10.0) == pytest.approx(0.5)

    def test_negative_current_rejected(self):
        with pytest.raises(ValueError):
            ConstantLoad(-1.0)


class TestSquareWaveLoad:
    def test_period_and_durations(self):
        load = SquareWaveLoad(0.96, frequency=0.001)
        assert load.period == pytest.approx(1000.0)
        assert load.on_duration == pytest.approx(500.0)
        assert load.off_duration == pytest.approx(500.0)

    def test_current_at(self):
        load = SquareWaveLoad(1.0, frequency=0.5, duty_cycle=0.5)
        assert load.current_at(0.1) == 1.0
        assert load.current_at(1.5) == 0.0
        assert load.current_at(2.1) == 1.0

    def test_start_with_off(self):
        load = SquareWaveLoad(1.0, frequency=1.0, start_with_on=False)
        assert load.current_at(0.1) == 0.0
        assert load.current_at(0.6) == 1.0

    def test_segments_sum_to_horizon(self):
        load = SquareWaveLoad(0.96, frequency=0.3, duty_cycle=0.25)
        segments = list(load.segments(10.0))
        assert sum(duration for duration, _ in segments) == pytest.approx(10.0)

    def test_mean_current_matches_duty_cycle(self):
        load = SquareWaveLoad(2.0, frequency=1.0, duty_cycle=0.25)
        assert load.mean_current(40.0) == pytest.approx(0.5)

    def test_off_current(self):
        load = SquareWaveLoad(1.0, frequency=1.0, current_off=0.2)
        assert load.current_at(0.75) == pytest.approx(0.2)

    @pytest.mark.parametrize("kwargs", [
        {"frequency": 0.0},
        {"frequency": 1.0, "duty_cycle": 0.0},
        {"frequency": 1.0, "duty_cycle": 1.0},
        {"frequency": 1.0, "current_off": -0.1},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SquareWaveLoad(1.0, **kwargs)


class TestPiecewiseConstantLoad:
    def test_lookup_and_segments(self):
        load = PiecewiseConstantLoad([1.0, 2.0, 1.0], [0.1, 0.0, 0.3])
        assert load.current_at(0.5) == pytest.approx(0.1)
        assert load.current_at(1.5) == pytest.approx(0.0)
        assert load.current_at(3.5) == pytest.approx(0.3)
        segments = list(load.segments(4.0))
        assert sum(d for d, _ in segments) == pytest.approx(4.0)

    def test_last_current_held_without_repeat(self):
        load = PiecewiseConstantLoad([1.0], [0.2])
        assert load.current_at(100.0) == pytest.approx(0.2)
        segments = list(load.segments(3.0))
        assert segments == [(1.0, 0.2), (2.0, 0.2)]

    def test_repeating_pattern(self):
        load = PiecewiseConstantLoad([1.0, 1.0], [1.0, 0.0], repeat=True)
        assert load.current_at(2.5) == pytest.approx(1.0)
        assert load.current_at(3.5) == pytest.approx(0.0)
        assert load.mean_current(8.0) == pytest.approx(0.5)

    def test_sampling(self):
        load = PiecewiseConstantLoad([2.0, 2.0], [1.0, 3.0])
        assert np.allclose(load.sample([0.5, 2.5]), [1.0, 3.0])

    @pytest.mark.parametrize("durations,currents", [
        ([], []),
        ([1.0, -1.0], [0.0, 0.0]),
        ([1.0], [-0.5]),
        ([1.0, 2.0], [0.5]),
    ])
    def test_invalid_inputs_rejected(self, durations, currents):
        with pytest.raises(ValueError):
            PiecewiseConstantLoad(durations, currents)
