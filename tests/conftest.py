"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.battery.parameters import KiBaMParameters, rao_battery_parameters
from repro.workload.burst import burst_workload
from repro.workload.onoff import onoff_workload
from repro.workload.simple import simple_workload

# Default the structural chain validators to ``warn`` for the whole suite
# (CI exports ``REPRO_CHECKS=strict`` on top): a contract violation in a
# chain construction surfaces as a ContractViolationWarning instead of
# passing silently, without hard-failing tests that build deliberately
# broken chains.  The mode is re-read on every check, so setting it here
# covers every test regardless of import order.
os.environ.setdefault("REPRO_CHECKS", "warn")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random-number generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_battery() -> KiBaMParameters:
    """The 2000 mAh battery of the paper (7200 As, c=0.625, k=4.5e-5/s)."""
    return rao_battery_parameters()


@pytest.fixture
def single_well_battery() -> KiBaMParameters:
    """The degenerate single-well battery of Figure 7 (c=1, k=0)."""
    return KiBaMParameters(capacity=7200.0, c=1.0, k=0.0)


@pytest.fixture
def small_battery() -> KiBaMParameters:
    """A small battery that empties quickly (for fast integration tests)."""
    return KiBaMParameters(capacity=60.0, c=0.625, k=1e-3)


@pytest.fixture
def onoff_model():
    """The 1 Hz Erlang-1 on/off workload of Section 6.1."""
    return onoff_workload(frequency=1.0, erlang_k=1)


@pytest.fixture
def simple_model():
    """The three-state simple workload of Section 4.3."""
    return simple_workload()


@pytest.fixture
def burst_model():
    """The five-state burst workload of Section 4.3."""
    return burst_workload()


@pytest.fixture
def three_state_generator() -> np.ndarray:
    """A small irreducible generator used by several CTMC tests."""
    return np.array(
        [
            [-3.0, 2.0, 1.0],
            [4.0, -5.0, 1.0],
            [0.5, 0.5, -1.0],
        ]
    )


@pytest.fixture
def strict_checks():
    """Run the enclosed code with ``REPRO_CHECKS=strict`` (violations raise)."""
    from repro.checking import override_checks

    with override_checks("strict"):
        yield
