"""Tests for the experiment registry and the cheap experiment drivers.

The expensive figure reproductions are exercised by the benchmark harness;
here we test the registry plumbing and run the drivers that are fast enough
for a unit-test suite (Table 1 with few stochastic runs and Figure 2).
"""

import numpy as np
import pytest

from repro.experiments import figure2, table1
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentResult,
    available_experiments,
    get_experiment,
)


class TestRegistry:
    def test_all_paper_artefacts_are_registered(self):
        names = available_experiments()
        expected = {
            "table1",
            "figure2",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "ablation_delta",
            "ablation_erlang",
        }
        assert expected.issubset(set(names))

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("figure99")

    def test_config_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        monkeypatch.setenv("REPRO_SIM_RUNS", "17")
        config = ExperimentConfig.from_environment()
        assert config.full is True
        assert config.n_simulation_runs == 17

    def test_config_default_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_SIM_RUNS", raising=False)
        config = ExperimentConfig.from_environment()
        assert config.full is False
        assert config.n_simulation_runs == 1000

    def test_result_rendering(self):
        result = ExperimentResult(
            experiment_id="x",
            title="demo",
            tables={"t": "a  b"},
            paper_reference={"k": "v"},
            notes=["note"],
        )
        text = result.render()
        assert "demo" in text and "a  b" in text and "note" in text


class TestTable1Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(ExperimentConfig(full=False, n_simulation_runs=10, seed=1))

    def test_kibam_column_matches_paper(self, result):
        data = result.data
        assert data["continuous"]["kibam_min"] == pytest.approx(91.0, abs=1.0)
        assert data["1 Hz"]["kibam_min"] == pytest.approx(203.0, abs=1.5)
        assert data["0.2 Hz"]["kibam_min"] == pytest.approx(203.0, abs=1.5)

    def test_modified_column_matches_paper(self, result):
        data = result.data
        assert data["continuous"]["modified_numerical_min"] == pytest.approx(89.0, abs=1.5)
        assert data["1 Hz"]["modified_numerical_min"] == pytest.approx(193.0, abs=2.5)
        assert data["0.2 Hz"]["modified_numerical_min"] == pytest.approx(193.0, abs=2.5)

    def test_kibam_is_frequency_independent(self, result):
        data = result.data
        assert data["1 Hz"]["kibam_min"] == pytest.approx(data["0.2 Hz"]["kibam_min"], rel=0.01)

    def test_fitted_k_close_to_paper_constant(self, result):
        assert result.data["fitted_k_per_second"] == pytest.approx(4.5e-5, rel=0.05)

    def test_rendered_table_mentions_all_workloads(self, result):
        text = result.tables["lifetimes"]
        for name in ("continuous", "1 Hz", "0.2 Hz"):
            assert name in text


class TestFigure2Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2.run(ExperimentConfig(full=False, n_simulation_runs=10, seed=1))

    def test_initial_well_contents(self, result):
        assert result.data["available"][0] == pytest.approx(4500.0)
        assert result.data["bound"][0] == pytest.approx(2700.0)

    def test_bound_charge_monotonically_decreases(self, result):
        bound = np.asarray(result.data["bound"])
        assert np.all(np.diff(bound) <= 1e-6)

    def test_available_charge_sawtooths(self, result):
        available = np.asarray(result.data["available"])
        assert np.any(np.diff(available) > 1e-6)
        assert np.any(np.diff(available) < -1e-6)

    def test_lifetime_shortly_after_12000_seconds(self, result):
        assert 11000.0 < result.data["lifetime_seconds"] < 13500.0


class TestDurableCachePlumbing:
    def test_config_reads_cache_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/some-cache")
        monkeypatch.setenv("REPRO_RESUME", "1")
        config = ExperimentConfig.from_environment()
        assert config.cache_dir == "/tmp/some-cache"
        assert config.resume is True

    def test_config_cache_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_RESUME", raising=False)
        config = ExperimentConfig.from_environment()
        assert config.cache_dir is None
        assert config.resume is False

    def test_sweep_options_without_config(self):
        from repro.engine import RunOptions
        from repro.experiments.common import sweep_options

        assert sweep_options(None) == RunOptions(max_workers=1)

    def test_sweep_options_thread_cache_and_progress(self, monkeypatch, tmp_path):
        from repro.engine import SweepCache
        from repro.experiments import common
        from repro.obs import events

        monkeypatch.setattr(common, "_SHARED_CACHES", {})
        config = ExperimentConfig(workers=2, cache_dir=str(tmp_path), progress=True)
        options = common.sweep_options(config)
        assert options.max_workers == 2
        assert isinstance(options.cache, SweepCache)
        # --progress routes through the obs event bus: the printer is a
        # subscriber, and the sweep callback is the bus itself.
        assert options.progress is events.emit
        assert common.print_sweep_progress in events._handlers
        events.unsubscribe(common.print_sweep_progress)
        # The same directory maps to the same cache instance, so hit and
        # resume counters aggregate across all drivers of one run.
        assert common.sweep_options(config).cache is options.cache

    def test_warm_directory_requires_resume(self, monkeypatch, tmp_path):
        from repro.experiments import common

        monkeypatch.setattr(common, "_SHARED_CACHES", {})
        (tmp_path / "deadbeef.pkl").write_bytes(b"x")
        with pytest.raises(ValueError, match="pass --resume"):
            common.shared_cache(tmp_path)
        assert common.shared_cache(tmp_path, resume=True) is not None

    def test_cache_summary_reports_hits_and_resumes(self, monkeypatch, tmp_path):
        from repro.experiments import common
        from repro.experiments.runner import cache_summary

        monkeypatch.setattr(common, "_SHARED_CACHES", {})
        config = ExperimentConfig(cache_dir=str(tmp_path))
        assert cache_summary(config) is None  # no sweep opened the cache yet
        common.shared_cache(tmp_path)
        summary = cache_summary(config)
        assert summary is not None
        assert "cache_hit: 0" in summary
        assert "resumed_hits: 0" in summary
        assert cache_summary(ExperimentConfig()) is None
