"""Tests for the workload models (base container, builder, catalog, paper models)."""

import numpy as np
import pytest

from repro.battery.units import SECONDS_PER_HOUR
from repro.workload.base import WorkloadModel
from repro.workload.builder import WorkloadBuilder
from repro.workload.burst import burst_workload
from repro.workload.catalog import available_workloads, get_workload, register_workload
from repro.workload.onoff import onoff_workload
from repro.workload.simple import simple_workload


class TestWorkloadModel:
    def test_validation_rejects_bad_generator(self):
        with pytest.raises(Exception):
            WorkloadModel(
                state_names=("a", "b"),
                generator=np.array([[1.0, -1.0], [0.0, 0.0]]),
                currents=np.array([0.0, 0.0]),
                initial_distribution=np.array([1.0, 0.0]),
            )

    def test_validation_rejects_negative_currents(self):
        with pytest.raises(ValueError):
            WorkloadModel(
                state_names=("a", "b"),
                generator=np.array([[-1.0, 1.0], [1.0, -1.0]]),
                currents=np.array([-0.1, 0.0]),
                initial_distribution=np.array([1.0, 0.0]),
            )

    def test_state_lookup_and_current(self, simple_model):
        assert simple_model.state_index("send") == 1
        assert simple_model.current_of("send") == pytest.approx(0.2)
        with pytest.raises(KeyError):
            simple_model.state_index("unknown")

    def test_with_initial_state(self, simple_model):
        moved = simple_model.with_initial_state("sleep")
        assert moved.initial_distribution[moved.state_index("sleep")] == 1.0
        # the original is unchanged (frozen dataclass semantics)
        assert simple_model.initial_distribution[simple_model.state_index("idle")] == 1.0

    def test_scaled_time(self, simple_model):
        doubled = simple_model.scaled_time(2.0)
        assert np.allclose(doubled.generator, 2.0 * simple_model.generator)
        with pytest.raises(ValueError):
            simple_model.scaled_time(0.0)

    def test_to_ctmc_roundtrip(self, simple_model):
        ctmc = simple_model.to_ctmc()
        assert ctmc.n_states == 3
        assert np.allclose(ctmc.initial_distribution, simple_model.initial_distribution)


class TestBuilder:
    def test_builds_hourly_rates_in_si_units(self):
        builder = WorkloadBuilder(time_unit="hours")
        builder.add_state("idle", current_ma=8.0)
        builder.add_state("send", current_ma=200.0)
        builder.add_transition("idle", "send", rate=2.0)
        builder.add_transition("send", "idle", rate=6.0)
        model = builder.initial_state("idle").build()
        assert model.generator[0, 1] == pytest.approx(2.0 / SECONDS_PER_HOUR)
        assert model.currents[1] == pytest.approx(0.2)

    def test_duplicate_state_rejected(self):
        builder = WorkloadBuilder()
        builder.add_state("a", current_a=0.0)
        with pytest.raises(ValueError):
            builder.add_state("a", current_a=0.1)

    def test_unknown_transition_states_rejected(self):
        builder = WorkloadBuilder()
        builder.add_state("a", current_a=0.0)
        builder.add_transition("a", "b", rate=1.0)
        with pytest.raises(ValueError):
            builder.build()

    def test_requires_exactly_one_current_spec(self):
        builder = WorkloadBuilder()
        with pytest.raises(ValueError):
            builder.add_state("a", current_ma=1.0, current_a=0.001)
        with pytest.raises(ValueError):
            builder.add_state("b")

    def test_self_loop_rejected(self):
        builder = WorkloadBuilder()
        builder.add_state("a", current_a=0.0)
        with pytest.raises(ValueError):
            builder.add_transition("a", "a", rate=1.0)

    def test_empty_builder_rejected(self):
        with pytest.raises(ValueError):
            WorkloadBuilder().build()


class TestOnOffModel:
    def test_basic_structure(self):
        model = onoff_workload(frequency=1.0, erlang_k=1)
        assert model.n_states == 2
        assert model.state_names == ("on_1", "off_1")
        assert model.generator[0, 1] == pytest.approx(2.0)
        assert model.currents[0] == pytest.approx(0.96)
        assert model.currents[1] == 0.0

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_erlang_phase_rate(self, k):
        frequency = 0.5
        model = onoff_workload(frequency=frequency, erlang_k=k)
        assert model.n_states == 2 * k
        # Every state is left with rate 2 f K.
        assert np.allclose(-np.diag(model.generator), 2.0 * frequency * k)

    @pytest.mark.parametrize("k", [1, 3])
    def test_mean_cycle_frequency(self, k):
        # Expected on-time + off-time = 1/f, i.e. the workload toggles with
        # frequency f on average.
        frequency = 0.25
        model = onoff_workload(frequency=frequency, erlang_k=k)
        steady = model.steady_state()
        assert steady.sum() == pytest.approx(1.0)
        # Time in "on" states is half the cycle for a symmetric model.
        on_probability = steady[:k].sum()
        assert on_probability == pytest.approx(0.5)

    def test_mean_current_is_half_the_on_current(self):
        model = onoff_workload(frequency=1.0, erlang_k=2, current_on=0.96)
        assert model.mean_current() == pytest.approx(0.48)

    def test_start_in_off(self):
        model = onoff_workload(frequency=1.0, start_in_on=False)
        assert model.initial_distribution[model.state_index("off_1")] == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            onoff_workload(frequency=0.0)
        with pytest.raises(ValueError):
            onoff_workload(frequency=1.0, erlang_k=0)
        with pytest.raises(ValueError):
            onoff_workload(frequency=1.0, current_on=-1.0)


class TestSimpleModel:
    def test_states_and_currents(self, simple_model):
        assert simple_model.state_names == ("idle", "send", "sleep")
        assert np.allclose(simple_model.currents, [0.008, 0.2, 0.0])

    def test_rates_match_section_4_3(self, simple_model):
        per_hour = simple_model.generator * SECONDS_PER_HOUR
        idle, send, sleep = 0, 1, 2
        assert per_hour[idle, send] == pytest.approx(2.0)
        assert per_hour[idle, sleep] == pytest.approx(1.0)
        assert per_hour[send, idle] == pytest.approx(6.0)
        assert per_hour[sleep, send] == pytest.approx(2.0)

    def test_steady_state_sending_probability_is_25_percent(self, simple_model):
        assert simple_model.probability_in(["send"]) == pytest.approx(0.25)

    def test_starts_idle(self, simple_model):
        assert simple_model.initial_distribution[simple_model.state_index("idle")] == 1.0

    def test_mean_send_duration_is_ten_minutes(self, simple_model):
        send = simple_model.state_index("send")
        mean_sojourn_seconds = 1.0 / (-simple_model.generator[send, send])
        assert mean_sojourn_seconds == pytest.approx(600.0)


class TestBurstModel:
    def test_states(self, burst_model):
        assert burst_model.state_names == ("sleep", "off-idle", "on-idle", "off-send", "on-send")

    def test_sending_probability_matches_simple_model(self, burst_model, simple_model):
        # The paper chooses lambda_burst = 182 /h so that the steady-state
        # sending probabilities of the two models coincide (0.25).
        burst_probability = burst_model.probability_in(["on-send", "off-send"])
        simple_probability = simple_model.probability_in(["send"])
        assert burst_probability == pytest.approx(simple_probability, abs=2e-3)

    def test_sleep_probability_is_higher_than_in_simple_model(self, burst_model, simple_model):
        assert burst_model.probability_in(["sleep"]) > simple_model.probability_in(["sleep"])

    def test_mean_current_is_lower_than_simple_model(self, burst_model, simple_model):
        # More sleep at the same send probability means a lower average draw.
        assert burst_model.mean_current() < simple_model.mean_current()

    def test_burst_arrival_rate_dominates(self, burst_model):
        on_idle = burst_model.state_index("on-idle")
        on_send = burst_model.state_index("on-send")
        assert burst_model.generator[on_idle, on_send] * SECONDS_PER_HOUR == pytest.approx(182.0)


class TestCatalog:
    def test_available_names(self):
        names = available_workloads()
        assert {"onoff", "simple", "burst"}.issubset(names)

    def test_get_with_arguments(self):
        model = get_workload("onoff", frequency=2.0, erlang_k=3)
        assert model.n_states == 6

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("does-not-exist")

    def test_register_custom_and_reject_duplicates(self):
        register_workload("custom-test-model", lambda: simple_workload())
        assert "custom-test-model" in available_workloads()
        with pytest.raises(ValueError):
            register_workload("simple", simple_workload)
