"""Tests for the workload models (base container, builder, catalog, paper models)."""

import numpy as np
import pytest

from repro.battery.units import SECONDS_PER_HOUR
from repro.workload.base import WorkloadModel
from repro.workload.builder import WorkloadBuilder
from repro.workload.catalog import available_workloads, get_workload, register_workload
from repro.workload.dutycycle import duty_cycle_workload
from repro.workload.mmpp import mmpp_workload
from repro.workload.onoff import onoff_workload
from repro.workload.randomized import random_workload
from repro.workload.simple import simple_workload


class TestWorkloadModel:
    def test_validation_rejects_bad_generator(self):
        with pytest.raises(Exception):
            WorkloadModel(
                state_names=("a", "b"),
                generator=np.array([[1.0, -1.0], [0.0, 0.0]]),
                currents=np.array([0.0, 0.0]),
                initial_distribution=np.array([1.0, 0.0]),
            )

    def test_validation_rejects_negative_currents(self):
        with pytest.raises(ValueError):
            WorkloadModel(
                state_names=("a", "b"),
                generator=np.array([[-1.0, 1.0], [1.0, -1.0]]),
                currents=np.array([-0.1, 0.0]),
                initial_distribution=np.array([1.0, 0.0]),
            )

    def test_state_lookup_and_current(self, simple_model):
        assert simple_model.state_index("send") == 1
        assert simple_model.current_of("send") == pytest.approx(0.2)
        with pytest.raises(KeyError):
            simple_model.state_index("unknown")

    def test_with_initial_state(self, simple_model):
        moved = simple_model.with_initial_state("sleep")
        assert moved.initial_distribution[moved.state_index("sleep")] == 1.0
        # the original is unchanged (frozen dataclass semantics)
        assert simple_model.initial_distribution[simple_model.state_index("idle")] == 1.0

    def test_scaled_time(self, simple_model):
        doubled = simple_model.scaled_time(2.0)
        assert np.allclose(doubled.generator, 2.0 * simple_model.generator)
        with pytest.raises(ValueError):
            simple_model.scaled_time(0.0)

    def test_to_ctmc_roundtrip(self, simple_model):
        ctmc = simple_model.to_ctmc()
        assert ctmc.n_states == 3
        assert np.allclose(ctmc.initial_distribution, simple_model.initial_distribution)


class TestBuilder:
    def test_builds_hourly_rates_in_si_units(self):
        builder = WorkloadBuilder(time_unit="hours")
        builder.add_state("idle", current_ma=8.0)
        builder.add_state("send", current_ma=200.0)
        builder.add_transition("idle", "send", rate=2.0)
        builder.add_transition("send", "idle", rate=6.0)
        model = builder.initial_state("idle").build()
        assert model.generator[0, 1] == pytest.approx(2.0 / SECONDS_PER_HOUR)
        assert model.currents[1] == pytest.approx(0.2)

    def test_duplicate_state_rejected(self):
        builder = WorkloadBuilder()
        builder.add_state("a", current_a=0.0)
        with pytest.raises(ValueError):
            builder.add_state("a", current_a=0.1)

    def test_unknown_transition_states_rejected(self):
        builder = WorkloadBuilder()
        builder.add_state("a", current_a=0.0)
        builder.add_transition("a", "b", rate=1.0)
        with pytest.raises(ValueError):
            builder.build()

    def test_requires_exactly_one_current_spec(self):
        builder = WorkloadBuilder()
        with pytest.raises(ValueError):
            builder.add_state("a", current_ma=1.0, current_a=0.001)
        with pytest.raises(ValueError):
            builder.add_state("b")

    def test_self_loop_rejected(self):
        builder = WorkloadBuilder()
        builder.add_state("a", current_a=0.0)
        with pytest.raises(ValueError):
            builder.add_transition("a", "a", rate=1.0)

    def test_empty_builder_rejected(self):
        with pytest.raises(ValueError):
            WorkloadBuilder().build()


class TestOnOffModel:
    def test_basic_structure(self):
        model = onoff_workload(frequency=1.0, erlang_k=1)
        assert model.n_states == 2
        assert model.state_names == ("on_1", "off_1")
        assert model.generator[0, 1] == pytest.approx(2.0)
        assert model.currents[0] == pytest.approx(0.96)
        assert model.currents[1] == 0.0

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_erlang_phase_rate(self, k):
        frequency = 0.5
        model = onoff_workload(frequency=frequency, erlang_k=k)
        assert model.n_states == 2 * k
        # Every state is left with rate 2 f K.
        assert np.allclose(-np.diag(model.generator), 2.0 * frequency * k)

    @pytest.mark.parametrize("k", [1, 3])
    def test_mean_cycle_frequency(self, k):
        # Expected on-time + off-time = 1/f, i.e. the workload toggles with
        # frequency f on average.
        frequency = 0.25
        model = onoff_workload(frequency=frequency, erlang_k=k)
        steady = model.steady_state()
        assert steady.sum() == pytest.approx(1.0)
        # Time in "on" states is half the cycle for a symmetric model.
        on_probability = steady[:k].sum()
        assert on_probability == pytest.approx(0.5)

    def test_mean_current_is_half_the_on_current(self):
        model = onoff_workload(frequency=1.0, erlang_k=2, current_on=0.96)
        assert model.mean_current() == pytest.approx(0.48)

    def test_start_in_off(self):
        model = onoff_workload(frequency=1.0, start_in_on=False)
        assert model.initial_distribution[model.state_index("off_1")] == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            onoff_workload(frequency=0.0)
        with pytest.raises(ValueError):
            onoff_workload(frequency=1.0, erlang_k=0)
        with pytest.raises(ValueError):
            onoff_workload(frequency=1.0, current_on=-1.0)


class TestSimpleModel:
    def test_states_and_currents(self, simple_model):
        assert simple_model.state_names == ("idle", "send", "sleep")
        assert np.allclose(simple_model.currents, [0.008, 0.2, 0.0])

    def test_rates_match_section_4_3(self, simple_model):
        per_hour = simple_model.generator * SECONDS_PER_HOUR
        idle, send, sleep = 0, 1, 2
        assert per_hour[idle, send] == pytest.approx(2.0)
        assert per_hour[idle, sleep] == pytest.approx(1.0)
        assert per_hour[send, idle] == pytest.approx(6.0)
        assert per_hour[sleep, send] == pytest.approx(2.0)

    def test_steady_state_sending_probability_is_25_percent(self, simple_model):
        assert simple_model.probability_in(["send"]) == pytest.approx(0.25)

    def test_starts_idle(self, simple_model):
        assert simple_model.initial_distribution[simple_model.state_index("idle")] == 1.0

    def test_mean_send_duration_is_ten_minutes(self, simple_model):
        send = simple_model.state_index("send")
        mean_sojourn_seconds = 1.0 / (-simple_model.generator[send, send])
        assert mean_sojourn_seconds == pytest.approx(600.0)


class TestBurstModel:
    def test_states(self, burst_model):
        assert burst_model.state_names == ("sleep", "off-idle", "on-idle", "off-send", "on-send")

    def test_sending_probability_matches_simple_model(self, burst_model, simple_model):
        # The paper chooses lambda_burst = 182 /h so that the steady-state
        # sending probabilities of the two models coincide (0.25).
        burst_probability = burst_model.probability_in(["on-send", "off-send"])
        simple_probability = simple_model.probability_in(["send"])
        assert burst_probability == pytest.approx(simple_probability, abs=2e-3)

    def test_sleep_probability_is_higher_than_in_simple_model(self, burst_model, simple_model):
        assert burst_model.probability_in(["sleep"]) > simple_model.probability_in(["sleep"])

    def test_mean_current_is_lower_than_simple_model(self, burst_model, simple_model):
        # More sleep at the same send probability means a lower average draw.
        assert burst_model.mean_current() < simple_model.mean_current()

    def test_burst_arrival_rate_dominates(self, burst_model):
        on_idle = burst_model.state_index("on-idle")
        on_send = burst_model.state_index("on-send")
        assert burst_model.generator[on_idle, on_send] * SECONDS_PER_HOUR == pytest.approx(182.0)


class TestMMPPModel:
    def test_default_structure(self):
        model = mmpp_workload()
        assert model.state_names == ("idle@quiet", "send@quiet", "idle@burst", "send@burst")
        assert model.currents[model.state_index("send@burst")] == pytest.approx(0.2)
        assert model.initial_distribution[model.state_index("idle@quiet")] == 1.0

    def test_arrival_and_modulation_rates(self):
        model = mmpp_workload(
            arrival_rates_per_hour=(2.0, 120.0),
            modulation_rates_per_hour=(1.0, 6.0),
        )
        per_hour = model.generator * SECONDS_PER_HOUR
        idle_q = model.state_index("idle@quiet")
        send_q = model.state_index("send@quiet")
        idle_b = model.state_index("idle@burst")
        send_b = model.state_index("send@burst")
        assert per_hour[idle_q, send_q] == pytest.approx(2.0)
        assert per_hour[idle_b, send_b] == pytest.approx(120.0)
        # Phase switching applies to both sub-states, preserving them.
        assert per_hour[idle_q, idle_b] == pytest.approx(1.0)
        assert per_hour[send_q, send_b] == pytest.approx(1.0)
        assert per_hour[idle_b, idle_q] == pytest.approx(6.0)

    def test_burst_phase_sends_more(self):
        model = mmpp_workload()
        steady = model.steady_state()
        send_given_quiet = steady[1] / (steady[0] + steady[1])
        send_given_burst = steady[3] / (steady[2] + steady[3])
        assert send_given_burst > 2 * send_given_quiet
        assert send_given_burst > 0.9

    def test_three_phases_need_explicit_modulation(self):
        with pytest.raises(ValueError):
            mmpp_workload(arrival_rates_per_hour=(1.0, 2.0, 3.0))
        modulation = [[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]]
        model = mmpp_workload(
            arrival_rates_per_hour=(1.0, 2.0, 3.0),
            modulation_rates_per_hour=modulation,
        )
        assert model.n_states == 6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            mmpp_workload(arrival_rates_per_hour=(-1.0, 2.0))
        with pytest.raises(ValueError):
            mmpp_workload(send_rate_per_hour=0.0)
        with pytest.raises(ValueError):
            mmpp_workload(phase_names=("only-one",))


class TestDutyCycleModel:
    def test_default_schedule_structure(self):
        model = duty_cycle_workload()
        assert model.n_states == 12  # three tasks x four phases
        assert model.state_names[0] == "sleep_1"
        assert model.initial_distribution[0] == 1.0

    def test_occupancy_matches_schedule(self):
        model = duty_cycle_workload(
            [("sleep", 54.0, 0.1), ("sense", 4.0, 15.0), ("transmit", 2.0, 200.0)],
            erlang_k=3,
        )
        steady = model.steady_state()
        occupancy = {}
        for name, probability in zip(model.state_names, steady):
            task = name.rsplit("_", 1)[0]
            occupancy[task] = occupancy.get(task, 0.0) + probability
        assert occupancy["sleep"] == pytest.approx(54.0 / 60.0)
        assert occupancy["sense"] == pytest.approx(4.0 / 60.0)
        assert occupancy["transmit"] == pytest.approx(2.0 / 60.0)

    def test_mean_current_is_duration_weighted(self):
        tasks = [("sleep", 90.0, 0.0), ("burst", 10.0, 100.0)]
        model = duty_cycle_workload(tasks, erlang_k=2)
        assert model.mean_current() == pytest.approx(0.1 * 0.1, rel=1e-6)  # 10 mA duty-weighted

    def test_phase_rates_give_requested_means(self):
        model = duty_cycle_workload([("a", 10.0, 1.0), ("b", 5.0, 2.0)], erlang_k=4)
        # Each of the 4 phases of task "a" is left with rate 4/10 per second.
        a1 = model.state_index("a_1")
        assert -model.generator[a1, a1] == pytest.approx(0.4)

    def test_start_task_selection(self):
        model = duty_cycle_workload(start_task="transmit")
        assert model.initial_distribution[model.state_index("transmit_1")] == 1.0
        with pytest.raises(ValueError):
            duty_cycle_workload(start_task="unknown")

    def test_single_state_constant_load(self):
        model = duty_cycle_workload([("on", 10.0, 100.0)], erlang_k=1)
        assert model.n_states == 1
        assert model.generator[0, 0] == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            duty_cycle_workload([])
        with pytest.raises(ValueError):
            duty_cycle_workload([("a", 0.0, 1.0)])
        with pytest.raises(ValueError):
            duty_cycle_workload([("a", 1.0, 1.0), ("a", 2.0, 1.0)])
        with pytest.raises(ValueError):
            duty_cycle_workload(erlang_k=0)


class TestRandomWorkload:
    def test_deterministic_given_seed(self):
        first = random_workload(5, seed=11)
        second = random_workload(5, seed=11)
        assert np.array_equal(first.generator, second.generator)
        assert np.array_equal(first.currents, second.currents)
        assert np.array_equal(first.initial_distribution, second.initial_distribution)

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            random_workload(5, seed=11).generator, random_workload(5, seed=12).generator
        )

    def test_irreducible_for_many_seeds(self):
        for seed in range(10):
            model = random_workload(6, seed=seed)
            steady = model.steady_state()
            assert np.all(steady > 0), f"seed {seed} gave a reducible chain"

    def test_always_has_a_consumer(self):
        for seed in range(10):
            model = random_workload(4, seed=seed, current_range_ma=(0.0, 10.0))
            assert model.currents.max() >= 0.005  # at least 5 mA (upper half)

    def test_single_state(self):
        model = random_workload(1, seed=3)
        assert model.n_states == 1
        assert model.generator[0, 0] == 0.0
        assert model.currents[0] > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_workload(0)
        with pytest.raises(ValueError):
            random_workload(3, mean_rate_per_hour=0.0)
        with pytest.raises(ValueError):
            random_workload(3, current_range_ma=(5.0, 5.0))
        with pytest.raises(ValueError):
            random_workload(3, extra_edge_probability=1.5)


class TestCatalog:
    def test_available_names(self):
        names = available_workloads()
        assert {"onoff", "simple", "burst", "mmpp", "duty-cycle", "random"}.issubset(names)

    def test_get_with_arguments(self):
        model = get_workload("onoff", frequency=2.0, erlang_k=3)
        assert model.n_states == 6

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("does-not-exist")

    def test_register_custom_and_reject_duplicates(self):
        register_workload("custom-test-model", lambda: simple_workload())
        assert "custom-test-model" in available_workloads()
        with pytest.raises(ValueError):
            register_workload("simple", simple_workload)
