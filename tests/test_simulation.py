"""Tests for the simulation substrate (rng, statistics, trajectories, lifetimes)."""

import numpy as np
import pytest

from repro.battery.ideal import IdealBattery
from repro.battery.kibam import KineticBatteryModel
from repro.battery.parameters import KiBaMParameters
from repro.simulation.battery_sim import (
    default_horizon,
    simulate_battery_on_trajectory,
    simulate_lifetime_once,
)
from repro.simulation.lifetime_sim import simulate_lifetime_distribution
from repro.simulation.rng import make_rng, spawn_rngs, spawn_seeds
from repro.simulation.statistics import (
    EmpiricalDistribution,
    dkw_confidence_band,
    summarize_samples,
)
from repro.simulation.trajectory import (
    Trajectory,
    cumulative_jump_probabilities,
    sample_trajectory,
)
from repro.simulation.vectorized import simulate_lifetimes_vectorized
from repro.workload.base import WorkloadModel
from repro.workload.onoff import onoff_workload


def absorbing_workload(*, on_current: float = 1.0, shutdown_rate: float = 0.01) -> WorkloadModel:
    """A device that draws *on_current* until it shuts down for good."""
    return WorkloadModel(
        state_names=("on", "off"),
        generator=np.array([[-shutdown_rate, shutdown_rate], [0.0, 0.0]]),
        currents=np.array([on_current, 0.0]),
        initial_distribution=np.array([1.0, 0.0]),
    )


class TestRng:
    def test_same_seed_same_stream(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_existing_generator_passed_through(self):
        generator = np.random.default_rng(1)
        assert make_rng(generator) is generator

    def test_spawned_streams_differ(self):
        streams = spawn_rngs(3, 4)
        values = [stream.random() for stream in streams]
        assert len(set(values)) == 4

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_seeds_deterministic_and_distinct(self):
        seeds = spawn_seeds(3, 8)
        assert seeds == spawn_seeds(3, 8)
        assert len(set(seeds)) == 8
        assert all(isinstance(seed, int) for seed in seeds)

    def test_spawn_seeds_prefix_stable(self):
        # Child i does not depend on how many siblings are spawned, so a
        # grown sweep keeps the seeds of its existing scenarios.
        assert spawn_seeds(3, 4) == spawn_seeds(3, 8)[:4]

    def test_spawn_seeds_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)


class TestStatistics:
    def test_empirical_cdf_values(self):
        distribution = EmpiricalDistribution(np.array([1.0, 2.0, 3.0, 4.0]))
        assert distribution.cdf(0.5) == 0.0
        assert distribution.cdf(2.0) == pytest.approx(0.5)
        assert distribution.cdf(10.0) == 1.0
        assert distribution.survival(2.0) == pytest.approx(0.5)

    def test_censored_samples(self):
        distribution = EmpiricalDistribution(np.array([1.0, 2.0, np.inf, np.inf]))
        assert distribution.n_censored == 2
        assert distribution.cdf(100.0) == pytest.approx(0.5)
        assert distribution.mean == pytest.approx(1.5)
        with pytest.raises(ValueError):
            distribution.quantile(0.9)

    def test_quantiles(self):
        distribution = EmpiricalDistribution(np.arange(1.0, 101.0))
        assert distribution.quantile(0.5) == pytest.approx(50.0)
        assert distribution.quantile(1.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            distribution.quantile(0.0)

    def test_dkw_band_shrinks_with_samples(self):
        assert dkw_confidence_band(100) > dkw_confidence_band(10000)
        with pytest.raises(ValueError):
            dkw_confidence_band(0)

    def test_confidence_band_brackets_cdf(self):
        distribution = EmpiricalDistribution(np.arange(50.0))
        lower, upper = distribution.confidence_band([10.0, 25.0])
        values = distribution.cdf([10.0, 25.0])
        assert np.all(lower <= values)
        assert np.all(values <= upper)

    def test_summary_contains_expected_keys(self):
        summary = summarize_samples([1.0, 2.0, 3.0, np.inf])
        assert summary["n"] == 4
        assert summary["n_censored"] == 1
        assert summary["median"] == pytest.approx(2.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution(np.array([1.0, np.nan]))


class TestTrajectory:
    def test_durations_cover_horizon(self, simple_model, rng):
        trajectory = sample_trajectory(simple_model, horizon=36000.0, rng=rng)
        assert trajectory.total_duration == pytest.approx(36000.0)
        assert trajectory.n_sojourns >= 1
        assert np.all(trajectory.durations > 0)

    def test_states_alternate_for_onoff(self, rng):
        workload = onoff_workload(frequency=0.1, erlang_k=1)
        trajectory = sample_trajectory(workload, horizon=200.0, rng=rng)
        assert np.all(np.abs(np.diff(trajectory.states)) == 1)

    def test_currents_match_states(self, simple_model, rng):
        trajectory = sample_trajectory(simple_model, horizon=7200.0, rng=rng)
        assert np.allclose(trajectory.currents, simple_model.currents[trajectory.states])

    def test_occupancy_long_run(self, simple_model, rng):
        trajectory = sample_trajectory(simple_model, horizon=3.6e6, rng=rng)
        occupancy = trajectory.state_occupancy(simple_model.n_states) / trajectory.total_duration
        assert np.allclose(occupancy, [0.5, 0.25, 0.25], atol=0.06)

    def test_fixed_initial_state(self, simple_model, rng):
        trajectory = sample_trajectory(simple_model, horizon=100.0, rng=rng, initial_state=2)
        assert trajectory.states[0] == 2

    def test_invalid_horizon(self, simple_model, rng):
        with pytest.raises(ValueError):
            sample_trajectory(simple_model, horizon=0.0, rng=rng)


class TestBatterySimulation:
    def test_deterministic_trajectory_lifetime(self):
        battery = KineticBatteryModel(KiBaMParameters(capacity=100.0, c=1.0, k=0.0))
        trajectory = Trajectory(
            states=np.array([0, 1, 0]),
            durations=np.array([50.0, 50.0, 200.0]),
            currents=np.array([1.0, 0.0, 1.0]),
            horizon=300.0,
        )
        lifetime = simulate_battery_on_trajectory(battery, trajectory)
        # 50 As consumed in the first segment, nothing in the second, the
        # remaining 50 As drain in the first 50 s of the third segment.
        assert lifetime == pytest.approx(150.0)

    def test_surviving_trajectory_returns_none(self):
        battery = KineticBatteryModel(KiBaMParameters(capacity=1000.0, c=1.0, k=0.0))
        trajectory = Trajectory(
            states=np.array([0]),
            durations=np.array([10.0]),
            currents=np.array([1.0]),
            horizon=10.0,
        )
        assert simulate_battery_on_trajectory(battery, trajectory) is None

    def test_generic_battery_fallback(self):
        battery = IdealBattery(100.0)
        trajectory = Trajectory(
            states=np.array([0]),
            durations=np.array([300.0]),
            currents=np.array([1.0]),
            horizon=300.0,
        )
        assert simulate_battery_on_trajectory(battery, trajectory) == pytest.approx(100.0)

    def test_default_horizon_scales_with_capacity(self, simple_model):
        small = default_horizon(simple_model, IdealBattery(100.0))
        large = default_horizon(simple_model, IdealBattery(1000.0))
        assert large == pytest.approx(10.0 * small)

    def test_simulate_once_returns_finite_or_inf(self, rng):
        workload = onoff_workload(frequency=0.05)
        battery = KineticBatteryModel(KiBaMParameters(capacity=60.0, c=1.0, k=0.0))
        value = simulate_lifetime_once(workload, battery, rng)
        assert value > 0


class TestLifetimeDistributionSimulation:
    def test_vectorized_and_scalar_engines_agree(self):
        workload = onoff_workload(frequency=0.05, erlang_k=1)
        parameters = KiBaMParameters(capacity=120.0, c=0.625, k=1e-3)
        horizon = 2000.0

        vector_samples = simulate_lifetimes_vectorized(
            workload, parameters, 400, make_rng(11), horizon
        )
        battery = KineticBatteryModel(parameters)
        rng = make_rng(12)
        scalar_samples = np.array(
            [simulate_lifetime_once(workload, battery, rng, horizon=horizon) for _ in range(400)]
        )
        # The two engines use different random streams; compare distributions.
        vector_finite = vector_samples[np.isfinite(vector_samples)]
        scalar_finite = scalar_samples[np.isfinite(scalar_samples)]
        assert vector_finite.size > 350
        assert scalar_finite.size > 350
        assert vector_finite.mean() == pytest.approx(scalar_finite.mean(), rel=0.05)
        assert np.quantile(vector_finite, 0.9) == pytest.approx(np.quantile(scalar_finite, 0.9), rel=0.08)

    def test_simulation_mean_matches_energy_balance(self):
        # Single-well battery under the on/off load: the lifetime is the time
        # needed to spend capacity/I_on seconds in the on state, i.e. about
        # capacity / (0.48 A) in expectation.
        workload = onoff_workload(frequency=0.05)
        parameters = KiBaMParameters(capacity=240.0, c=1.0, k=0.0)
        result = simulate_lifetime_distribution(
            workload, KineticBatteryModel(parameters), n_runs=600, seed=5
        )
        assert result.mean_lifetime == pytest.approx(500.0, rel=0.08)
        assert result.probability_empty_by(2000.0) > 0.98

    def test_reproducible_with_seed(self):
        workload = onoff_workload(frequency=0.05)
        battery = KineticBatteryModel(KiBaMParameters(capacity=120.0, c=1.0, k=0.0))
        first = simulate_lifetime_distribution(workload, battery, n_runs=50, seed=42)
        second = simulate_lifetime_distribution(workload, battery, n_runs=50, seed=42)
        assert np.allclose(first.samples, second.samples)

    def test_summary_and_cdf(self):
        workload = onoff_workload(frequency=0.05)
        battery = KineticBatteryModel(KiBaMParameters(capacity=120.0, c=1.0, k=0.0))
        result = simulate_lifetime_distribution(workload, battery, n_runs=100, seed=3)
        summary = result.summary()
        assert summary["n"] == 100
        cdf = result.cdf([100.0, 400.0, 2000.0])
        assert np.all(np.diff(cdf) >= 0)

    def test_invalid_run_count(self):
        workload = onoff_workload(frequency=0.05)
        battery = KineticBatteryModel(KiBaMParameters(capacity=120.0, c=1.0, k=0.0))
        with pytest.raises(ValueError):
            simulate_lifetime_distribution(workload, battery, n_runs=0)

    def test_vectorized_input_validation(self):
        workload = onoff_workload(frequency=0.05)
        parameters = KiBaMParameters(capacity=120.0, c=1.0, k=0.0)
        with pytest.raises(ValueError):
            simulate_lifetimes_vectorized(workload, parameters, 0, make_rng(1), 100.0)
        with pytest.raises(ValueError):
            simulate_lifetimes_vectorized(workload, parameters, 10, make_rng(1), 0.0)


class TestAbsorbingWorkloads:
    """Regression tests: absorbing workload states must self-loop.

    The cumulative jump rows used to be all-ones for states with no exit
    rate, which the ``(u > row).sum()`` sampling rule decodes as "jump to
    state 0" -- silently restarting the workload instead of staying put.
    """

    def test_cumulative_rows_keep_absorbing_state_in_place(self):
        workload = absorbing_workload()
        cumulative = cumulative_jump_probabilities(workload)
        uniforms = np.array([0.0, 0.25, 0.5, 0.999])
        successors = (uniforms[:, None] >= cumulative[1]).sum(axis=1)
        assert np.all(successors == 1), "absorbing state must jump to itself"
        # The non-absorbing state still jumps to its only successor.
        successors = (uniforms[:, None] >= cumulative[0]).sum(axis=1)
        assert np.all(successors == 1)

    def test_cumulative_rows_interior_absorbing_state(self):
        workload = WorkloadModel(
            state_names=("a", "dead", "b"),
            generator=np.array(
                [[-1.0, 0.5, 0.5], [0.0, 0.0, 0.0], [1.0, 1.0, -2.0]]
            ),
            currents=np.array([0.1, 0.0, 0.2]),
            initial_distribution=np.array([1.0, 0.0, 0.0]),
        )
        cumulative = cumulative_jump_probabilities(workload)
        uniforms = np.linspace(0.0, 0.999, 7)
        successors = (uniforms[:, None] >= cumulative[1]).sum(axis=1)
        assert np.all(successors == 1)

    def test_vectorized_lifetimes_with_absorbing_workload(self):
        # Single-well battery, 20 As at 1 A: runs still in the on-state at
        # t = 20 s die then; runs absorbed into the zero-current off-state
        # before that survive forever.  Pr{die} = exp(-0.01 * 20).
        workload = absorbing_workload(on_current=1.0, shutdown_rate=0.01)
        parameters = KiBaMParameters(capacity=20.0, c=1.0, k=0.0)
        samples = simulate_lifetimes_vectorized(
            workload, parameters, 4000, make_rng(17), horizon=500.0
        )
        finite = np.isfinite(samples)
        assert np.all(samples[finite] == pytest.approx(20.0))
        assert finite.mean() == pytest.approx(np.exp(-0.2), abs=0.02)

    def test_vectorized_matches_trajectory_engine_with_absorption(self):
        workload = absorbing_workload(on_current=0.5, shutdown_rate=0.02)
        parameters = KiBaMParameters(capacity=30.0, c=0.625, k=1e-3)
        horizon = 800.0
        vector_samples = simulate_lifetimes_vectorized(
            workload, parameters, 3000, make_rng(21), horizon
        )
        battery = KineticBatteryModel(parameters)
        rng = make_rng(22)
        scalar_samples = np.array(
            [
                simulate_lifetime_once(workload, battery, rng, horizon=horizon)
                for _ in range(3000)
            ]
        )
        vector_deaths = np.isfinite(vector_samples)
        scalar_deaths = np.isfinite(scalar_samples)
        assert vector_deaths.mean() == pytest.approx(scalar_deaths.mean(), abs=0.03)
        assert vector_samples[vector_deaths].mean() == pytest.approx(
            scalar_samples[scalar_deaths].mean(), rel=0.05
        )
