"""Tests of the :mod:`repro.checking` correctness layer.

Protocol conformance of the shipped plug-point implementations, the
fingerprint-registry audit, the diagnostics schema, the size-guarded
dense boundary and the ``REPRO_CHECKS`` mode semantics.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.battery.parameters import KiBaMParameters
from repro.checking import (
    CHECK_MODES,
    DEFAULT_DENSE_LIMIT,
    ContractViolationWarning,
    DenseFallbackError,
    DiscretizedChain,
    GeneratorOperator,
    SchedulerPolicy,
    SweepExecutor,
    UniformizationKernel,
    audit_fingerprint_registry,
    checks_mode,
    dense_fallback,
    enforce,
    override_checks,
    registered_fields,
)
from repro.core.discretization import discretize
from repro.core.kibamrm import KiBaMRM
from repro.engine.diagnostics import DIAGNOSTIC_KEYS, validate_diagnostics
from repro.markov.kernels import CompiledKernel, ScipyKernel, build_kernel
from repro.markov.kronecker import KroneckerGenerator, KroneckerTerm
from repro.multibattery.policies import (
    BestOfPolicy,
    RoundRobinPolicy,
    StaticSplitPolicy,
)
from repro.multibattery.system import MultiBatterySystem
from repro.workload.onoff import onoff_workload


def small_kronecker() -> KroneckerGenerator:
    up = sp.csr_matrix(np.triu(np.ones((3, 3)), k=1))
    return KroneckerGenerator((3, 2), [KroneckerTerm(factors=((0, up),), scales=())])


def small_chain():
    battery = KiBaMParameters(capacity=60.0, c=0.625, k=1e-3)
    return discretize(KiBaMRM(workload=onoff_workload(frequency=1.0), battery=battery), delta=6.0)


# ----------------------------------------------------------------------
# protocol conformance of the shipped implementations
# ----------------------------------------------------------------------


def test_kronecker_generator_satisfies_generator_operator() -> None:
    assert isinstance(small_kronecker(), GeneratorOperator)


def test_kernels_satisfy_uniformization_kernel() -> None:
    matrix = sp.csr_matrix(np.eye(4))
    assert isinstance(ScipyKernel(matrix), UniformizationKernel)
    assert isinstance(CompiledKernel(matrix), UniformizationKernel)
    assert isinstance(build_kernel(matrix), UniformizationKernel)


def test_policies_satisfy_scheduler_policy() -> None:
    for policy in (StaticSplitPolicy(), RoundRobinPolicy(), BestOfPolicy()):
        assert isinstance(policy, SchedulerPolicy), policy


def test_discretized_chains_satisfy_discretized_chain() -> None:
    assert isinstance(small_chain(), DiscretizedChain)


def test_multibattery_chains_satisfy_discretized_chain() -> None:
    battery = KiBaMParameters(capacity=60.0, c=0.625, k=1e-3)
    system = MultiBatterySystem(
        workload=onoff_workload(frequency=1.0),
        batteries=(battery, battery),
        policy=StaticSplitPolicy(),
        failures_to_die=2,
    )
    for backend in ("assembled", "matrix-free", "lumped"):
        chain = system.discretize(12.0, backend=backend)
        assert isinstance(chain, DiscretizedChain), backend


def test_non_conforming_object_is_rejected() -> None:
    class NotAKernel:
        name = "nope"

    assert not isinstance(NotAKernel(), UniformizationKernel)


def test_chunk_executors_satisfy_sweep_executor() -> None:
    from repro.engine.executor import ProcessChunkExecutor, SerialChunkExecutor

    def work(task):  # pragma: no cover - never invoked
        raise AssertionError

    assert isinstance(SerialChunkExecutor(work), SweepExecutor)
    process = ProcessChunkExecutor(work, max_workers=1)
    try:
        assert isinstance(process, SweepExecutor)
    finally:
        process.shutdown()


# ----------------------------------------------------------------------
# fingerprint registry
# ----------------------------------------------------------------------


def test_fingerprint_registry_matches_live_dataclasses() -> None:
    audit_fingerprint_registry()


def test_registered_fields_union() -> None:
    fields = registered_fields("LifetimeProblem")
    assert "workload" in fields and "label" in fields


def test_registered_fields_unknown_class() -> None:
    with pytest.raises(Exception, match="no fingerprint registry entry"):
        registered_fields("NotAProblem")


def test_execution_policy_fields_must_stay_exempt(monkeypatch) -> None:
    """Regression: moving an execution knob into the fingerprint fails the audit."""
    from repro.checking import fingerprints

    entry = fingerprints.FINGERPRINT_FIELDS["SweepSpec"]
    tampered = {
        "relevant": entry["relevant"] + ("execution",),
        "exempt": tuple(field for field in entry["exempt"] if field != "execution"),
    }
    monkeypatch.setitem(fingerprints.FINGERPRINT_FIELDS, "SweepSpec", tampered)
    with pytest.raises(
        fingerprints.FingerprintRegistryError, match="must stay fingerprint-exempt"
    ):
        audit_fingerprint_registry()


def test_execution_policy_exemptions_are_declared() -> None:
    from repro.checking import EXECUTION_POLICY_EXEMPT

    assert EXECUTION_POLICY_EXEMPT == {"SweepSpec": ("execution",)}


# ----------------------------------------------------------------------
# diagnostics schema
# ----------------------------------------------------------------------


def test_validate_diagnostics_accepts_schema_keys() -> None:
    validate_diagnostics({"delta": 0.1, "n_states": 10, "iterations": 15})


def test_validate_diagnostics_rejects_unknown_keys() -> None:
    with pytest.raises(KeyError, match="made_up_key"):
        validate_diagnostics({"made_up_key": 1})


def test_solver_diagnostics_stay_inside_the_schema(small_battery) -> None:
    from repro.engine import solve_lifetime
    from repro.engine.problem import LifetimeProblem

    problem = LifetimeProblem(
        workload=onoff_workload(frequency=1.0),
        battery=small_battery,
        times=np.linspace(60.0, 3600.0, 8),
    )
    result = solve_lifetime(problem, method="mrm-uniformization")
    assert set(result.diagnostics) <= DIAGNOSTIC_KEYS, (
        sorted(set(result.diagnostics) - DIAGNOSTIC_KEYS)
    )


# ----------------------------------------------------------------------
# the dense boundary
# ----------------------------------------------------------------------


def test_dense_fallback_densifies_small_matrices() -> None:
    q = np.array([[-1.0, 1.0], [0.0, 0.0]])
    np.testing.assert_allclose(dense_fallback(sp.csr_matrix(q)), q)
    np.testing.assert_allclose(dense_fallback(q), q)


def test_dense_fallback_assembles_matrix_free_operators() -> None:
    operator = small_kronecker()
    dense = dense_fallback(operator)
    np.testing.assert_allclose(dense, operator.to_csr().toarray())  # repro-lint: allow RPR001 (6-state test operator)


def test_dense_fallback_refuses_large_chains() -> None:
    large = sp.eye(DEFAULT_DENSE_LIMIT + 1, format="csr")
    with pytest.raises(DenseFallbackError, match="refusing dense fallback"):
        dense_fallback(large)


def test_dense_fallback_respects_an_explicit_limit() -> None:
    q = sp.eye(10, format="csr")
    with pytest.raises(DenseFallbackError):
        dense_fallback(q, limit=5)
    assert dense_fallback(q, limit=10).shape == (10, 10)


# ----------------------------------------------------------------------
# REPRO_CHECKS modes
# ----------------------------------------------------------------------


def test_check_modes_are_the_documented_triple() -> None:
    assert CHECK_MODES == ("strict", "warn", "off")


def test_override_checks_wins_over_environment(monkeypatch) -> None:
    monkeypatch.setenv("REPRO_CHECKS", "off")
    assert checks_mode() == "off"
    with override_checks("strict"):
        assert checks_mode() == "strict"
        with override_checks("warn"):
            assert checks_mode() == "warn"
        assert checks_mode() == "strict"
    assert checks_mode() == "off"


def test_invalid_environment_mode_raises(monkeypatch) -> None:
    monkeypatch.setenv("REPRO_CHECKS", "sometimes")
    with pytest.raises(ValueError, match="REPRO_CHECKS"):
        checks_mode()


def test_enforce_semantics() -> None:
    error = ValueError("broken contract")
    with pytest.raises(ValueError, match="broken contract"):
        enforce(error, mode="strict")
    with pytest.warns(ContractViolationWarning, match="broken contract"):
        enforce(error, mode="warn")
    enforce(error, mode="off")  # silent


def test_strict_checks_fixture_forces_strict(strict_checks) -> None:
    assert checks_mode() == "strict"
