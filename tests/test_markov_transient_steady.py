"""Tests for the transient helpers and the steady-state solver."""

import numpy as np
import pytest

from repro.markov.steady_state import steady_state_distribution
from repro.markov.transient import (
    cumulative_state_probabilities,
    expm_transient,
    transient_distribution,
)


class TestTransientDistribution:
    def test_scalar_time_returns_vector(self, three_state_generator):
        result = transient_distribution(three_state_generator, [1.0, 0.0, 0.0], 0.5)
        assert result.shape == (3,)

    def test_sequence_of_times_returns_matrix(self, three_state_generator):
        result = transient_distribution(three_state_generator, [1.0, 0.0, 0.0], [0.5, 1.0])
        assert result.shape == (2, 3)

    def test_matches_expm(self, three_state_generator):
        alpha = np.array([0.0, 0.0, 1.0])
        uniform = transient_distribution(three_state_generator, alpha, 1.3)
        reference = expm_transient(three_state_generator, alpha, 1.3)
        assert np.allclose(uniform, reference, atol=1e-8)


class TestCumulativeStateProbabilities:
    def test_total_time_is_conserved(self, three_state_generator):
        occupancy = cumulative_state_probabilities(three_state_generator, [1.0, 0.0, 0.0], 5.0)
        assert occupancy.sum() == pytest.approx(5.0, rel=1e-6)

    def test_single_state_chain(self):
        occupancy = cumulative_state_probabilities(np.zeros((1, 1)), [1.0], 3.0)
        assert occupancy[0] == pytest.approx(3.0)

    def test_two_state_analytic(self):
        # 0 -> 1 with rate 1, state 1 absorbing: time in state 0 up to t is
        # (1 - exp(-t)).
        generator = np.array([[-1.0, 1.0], [0.0, 0.0]])
        occupancy = cumulative_state_probabilities(generator, [1.0, 0.0], 2.0, n_points=2001)
        assert occupancy[0] == pytest.approx(1.0 - np.exp(-2.0), abs=1e-4)

    def test_requires_two_points(self, three_state_generator):
        with pytest.raises(ValueError):
            cumulative_state_probabilities(three_state_generator, [1.0, 0.0, 0.0], 1.0, n_points=1)


class TestSteadyState:
    def test_balance_equations(self, three_state_generator):
        pi = steady_state_distribution(three_state_generator)
        assert pi.sum() == pytest.approx(1.0)
        assert np.allclose(pi @ three_state_generator, 0.0, atol=1e-10)

    def test_two_state_birth_death(self):
        generator = np.array([[-2.0, 2.0], [3.0, -3.0]])
        pi = steady_state_distribution(generator)
        assert pi[0] == pytest.approx(0.6)
        assert pi[1] == pytest.approx(0.4)

    def test_single_state(self):
        assert steady_state_distribution(np.zeros((1, 1)))[0] == pytest.approx(1.0)

    def test_simple_workload_steady_state(self, simple_model):
        # Analytical solution of the simple model: idle 1/2, send 1/4, sleep 1/4.
        pi = steady_state_distribution(simple_model.generator)
        assert np.allclose(pi, [0.5, 0.25, 0.25], atol=1e-9)

    def test_invalid_generator_rejected(self):
        with pytest.raises(Exception):
            steady_state_distribution(np.array([[1.0, -1.0], [0.0, 0.0]]))
