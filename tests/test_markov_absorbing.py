"""Tests for absorbing-state analysis and first-passage times."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov.absorbing import (
    absorbing_states,
    absorption_probabilities,
    absorption_time_cdf,
    expected_absorption_time,
    first_passage_time_cdf,
)


@pytest.fixture
def absorbing_chain():
    """0 -> 1 -> 2 with rates 2 and 1; state 2 is absorbing."""
    return np.array(
        [
            [-2.0, 2.0, 0.0],
            [0.0, -1.0, 1.0],
            [0.0, 0.0, 0.0],
        ]
    )


class TestAbsorbingStates:
    def test_detection(self, absorbing_chain):
        assert list(absorbing_states(absorbing_chain)) == [2]

    def test_sparse_detection(self, absorbing_chain):
        assert list(absorbing_states(sp.csr_matrix(absorbing_chain))) == [2]


class TestAbsorptionTimeCdf:
    def test_hypoexponential_absorption(self, absorbing_chain):
        # Absorption time is the sum of Exp(2) and Exp(1): CDF known in closed form.
        times = np.array([0.5, 1.0, 2.0, 5.0])
        expected = 1.0 - 2.0 * np.exp(-times) + np.exp(-2.0 * times)
        cdf = absorption_time_cdf(absorbing_chain, [1.0, 0.0, 0.0], [2], times)
        assert np.allclose(cdf, expected, atol=1e-8)

    def test_monotone_nondecreasing(self, absorbing_chain):
        times = np.linspace(0.0, 10.0, 21)
        cdf = absorption_time_cdf(absorbing_chain, [1.0, 0.0, 0.0], [2], times)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] == pytest.approx(1.0, abs=1e-4)


class TestFirstPassage:
    def test_first_passage_equals_absorption_for_absorbing_target(self, absorbing_chain):
        times = [0.5, 1.5, 3.0]
        direct = absorption_time_cdf(absorbing_chain, [1.0, 0.0, 0.0], [2], times)
        via_first_passage = first_passage_time_cdf(absorbing_chain, [1.0, 0.0, 0.0], [2], times)
        assert np.allclose(direct, via_first_passage, atol=1e-10)

    def test_first_passage_in_irreducible_chain(self, three_state_generator):
        # First passage to state 2 starting from state 0: exponential-phase
        # mixture; just verify it is a proper, increasing CDF reaching 1.
        times = np.linspace(0.1, 30.0, 40)
        cdf = first_passage_time_cdf(three_state_generator, [1.0, 0.0, 0.0], [2], times)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] == pytest.approx(1.0, abs=1e-5)

    def test_sparse_input(self, three_state_generator):
        times = [1.0, 5.0]
        dense = first_passage_time_cdf(three_state_generator, [1.0, 0.0, 0.0], [2], times)
        sparse = first_passage_time_cdf(
            sp.csr_matrix(three_state_generator), [1.0, 0.0, 0.0], [2], times
        )
        assert np.allclose(dense, sparse, atol=1e-10)


class TestEventualAbsorption:
    def test_probabilities_are_one_when_absorption_certain(self, absorbing_chain):
        probabilities = absorption_probabilities(absorbing_chain)
        assert np.allclose(probabilities, 1.0)

    def test_expected_absorption_time(self, absorbing_chain):
        expected = expected_absorption_time(absorbing_chain, [1.0, 0.0, 0.0])
        assert expected == pytest.approx(0.5 + 1.0)

    def test_expected_absorption_time_from_later_state(self, absorbing_chain):
        expected = expected_absorption_time(absorbing_chain, [0.0, 1.0, 0.0])
        assert expected == pytest.approx(1.0)
