"""Tests for the ideal battery and Peukert's law."""

import numpy as np
import pytest

from repro.battery.ideal import IdealBattery
from repro.battery.peukert import PeukertBattery, fit_peukert
from repro.battery.profiles import ConstantLoad, SquareWaveLoad


class TestIdealBattery:
    def test_constant_load_lifetime(self):
        battery = IdealBattery(7200.0)
        assert battery.lifetime_constant(0.96) == pytest.approx(7500.0)

    def test_square_wave_lifetime_follows_consumed_charge(self):
        battery = IdealBattery(7200.0)
        # 15 on-phases of 480 As each are needed.  For the fast wave the
        # 15000th half-second on-phase ends at essentially 15000 s; for the
        # slow wave the 15th 500 s on-phase ends at 14 * 1000 + 500 = 14500 s.
        fast = battery.lifetime(SquareWaveLoad(0.96, frequency=1.0))
        slow = battery.lifetime(SquareWaveLoad(0.96, frequency=0.001))
        assert fast == pytest.approx(15000.0, rel=1e-3)
        assert slow == pytest.approx(14500.0, rel=1e-6)
        # Either way the delivered charge is exactly the capacity.
        assert battery.delivered_capacity(0.96) == pytest.approx(7200.0)

    def test_zero_load_never_empties(self):
        battery = IdealBattery(100.0)
        assert battery.lifetime(ConstantLoad(0.0)) is None

    def test_delivered_capacity_is_load_independent(self):
        battery = IdealBattery(3600.0)
        assert battery.delivered_capacity(0.1) == pytest.approx(3600.0)
        assert battery.delivered_capacity(10.0) == pytest.approx(3600.0)

    def test_discharge_trajectory(self):
        battery = IdealBattery(10.0)
        result = battery.discharge(ConstantLoad(1.0), [0.0, 5.0, 10.0, 12.0])
        assert np.allclose(result.available_charge, [10.0, 5.0, 0.0, 0.0])
        assert result.lifetime == pytest.approx(10.0)
        assert np.allclose(result.bound_charge, 0.0)
        assert np.allclose(result.delivered_charge, [0.0, 5.0, 10.0, 10.0])

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            IdealBattery(0.0)


class TestPeukert:
    def test_reduces_to_ideal_for_b_equal_one(self):
        battery = PeukertBattery(a=7200.0, b=1.0)
        assert battery.lifetime_constant(2.0) == pytest.approx(3600.0)

    def test_higher_loads_deliver_less_charge(self):
        battery = PeukertBattery(a=7200.0, b=1.2)
        low = battery.lifetime_constant(0.5) * 0.5
        high = battery.lifetime_constant(2.0) * 2.0
        assert high < low

    def test_same_average_load_gives_same_lifetime(self):
        # This is exactly the deficiency of Peukert's law the paper points out.
        battery = PeukertBattery(a=7200.0, b=1.2)
        fast = battery.lifetime(SquareWaveLoad(0.96, frequency=1.0), horizon=40000.0)
        slow = battery.lifetime(SquareWaveLoad(0.96, frequency=0.001), horizon=40000.0)
        assert fast == pytest.approx(slow, rel=1e-6)

    def test_fit_recovers_parameters(self):
        true = PeukertBattery(a=5000.0, b=1.3)
        currents = np.array([0.25, 0.5, 1.0, 2.0, 4.0])
        lifetimes = np.array([true.lifetime_constant(i) for i in currents])
        fitted = fit_peukert(currents, lifetimes)
        assert fitted.a == pytest.approx(5000.0, rel=1e-6)
        assert fitted.b == pytest.approx(1.3, rel=1e-6)

    def test_fit_requires_two_distinct_currents(self):
        with pytest.raises(ValueError):
            fit_peukert([1.0, 1.0], [100.0, 100.0])

    def test_discharge_trajectory_reaches_zero(self):
        battery = PeukertBattery(a=100.0, b=1.1)
        life = battery.lifetime_constant(1.0)
        result = battery.discharge(ConstantLoad(1.0), np.linspace(0.0, life * 1.2, 10))
        assert result.available_charge[0] > 0
        assert result.available_charge[-1] == pytest.approx(0.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PeukertBattery(a=-1.0, b=1.2)
        with pytest.raises(ValueError):
            PeukertBattery(a=1.0, b=0.5)
        with pytest.raises(ValueError):
            PeukertBattery(a=1.0, b=1.2).lifetime_constant(0.0)
