"""Tests of the multi-battery scheduling subsystem.

Covers the product-space construction (including a hypothesis property
test against an explicitly enumerated reference chain), the scheduler
policies, the engine threading (solvers, ``auto`` dispatch, batches,
sweeps, cache fingerprints), the MRM-vs-Monte-Carlo agreement per policy
and the steady-state horizon cap of the Monte-Carlo solver.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.parameters import KiBaMParameters
from repro.checking import dense_fallback
from repro.core.discretization import discretize
from repro.core.grid import RewardGrid
from repro.core.kibamrm import KiBaMRM
from repro.engine import (
    LifetimeProblem,
    RunOptions,
    ScenarioBatch,
    SweepCache,
    SweepSpec,
    run_sweep,
    solve_lifetime,
)
from repro.engine.solvers import choose_method
from repro.engine.sweep import scenario_fingerprint
from repro.engine.workspace import SolveWorkspace
from repro.multibattery import (
    MultiBatteryProblem,
    MultiBatterySystem,
    available_policies,
    get_policy,
)
from repro.simulation.lifetime_sim import (
    default_system_horizon,
    simulate_system_lifetime_distribution,
)
from repro.workload.base import WorkloadModel
from repro.workload.onoff import onoff_workload


def busy_idle_workload(busy_current: float = 0.5, idle_current: float = 0.05) -> WorkloadModel:
    return WorkloadModel(
        state_names=("busy", "idle"),
        generator=np.array([[-0.02, 0.02], [0.02, -0.02]]),
        currents=np.array([busy_current, idle_current]),
        initial_distribution=np.array([1.0, 0.0]),
    )


# ----------------------------------------------------------------------
# Reference construction: an explicitly enumerated product chain.
# ----------------------------------------------------------------------
def enumerate_product_chain(system: MultiBatterySystem, delta: float):
    """Loop-based reference for the Kronecker assembly (tiny systems only).

    Returns ``(generator, initial, failed_states)`` built state by state
    from the definition: workload and phase transitions, per-battery
    transfer and policy-weighted consumption transitions, absorbing
    k-of-N-failed states.
    """
    workload = system.workload
    policy = system.policy
    n_batteries = system.n_batteries
    grids = [
        RewardGrid(delta, battery.available_capacity, battery.bound_capacity)
        for battery in system.batteries
    ]
    cells = [grid.n_cells for grid in grids]
    n_cells = int(np.prod(cells))
    n_phases = policy.n_phases(n_batteries)
    phase_generator = np.asarray(policy.phase_generator(n_batteries), dtype=float)
    n_states = workload.n_states * n_phases * n_cells

    def cell_split(cell_flat):
        """Decompose a flat cell index into per-battery (j1, j2) pairs."""
        parts = []
        rest = cell_flat
        for size in reversed(cells):
            parts.append(rest % size)
            rest //= size
        parts = parts[::-1]
        return [
            (part // grids[b].n_levels2, part % grids[b].n_levels2)
            for b, part in enumerate(parts)
        ]

    def flat(i, p, per_battery):
        cell = 0
        for b, grid in enumerate(grids):
            j1, j2 = per_battery[b]
            cell = cell * cells[b] + (j1 * grid.n_levels2 + j2)
        return (i * n_phases + p) * n_cells + cell

    generator = np.zeros((n_states, n_states))
    failed = []
    for index in range(n_states):
        cell_flat = index % n_cells
        aux = index // n_cells
        p = aux % n_phases
        i = aux // n_phases
        per_battery = cell_split(cell_flat)
        levels = np.array([[j1 for j1, _ in per_battery]], dtype=float)
        alive = levels >= 1
        if int((~alive).sum()) >= system.failures_to_die:
            if i == 0 and p == 0:
                failed.append(cell_flat)
            continue
        # Workload transitions.
        for target in range(workload.n_states):
            if target != i and workload.generator[i, target] > 0.0:
                generator[index, flat(target, p, per_battery)] += workload.generator[i, target]
        # Phase transitions.
        for target in range(n_phases):
            if target != p and phase_generator[p, target] > 0.0:
                generator[index, flat(i, target, per_battery)] += phase_generator[p, target]
        weights = policy.routing_weights(levels, alive)[p, 0]
        for b, (grid, battery) in enumerate(zip(grids, system.batteries)):
            j1, j2 = per_battery[b]
            # Transfer: one quantum moves bound -> available.
            if (
                battery.k > 0.0
                and battery.c < 1.0
                and 1 <= j1 <= grid.n_levels1 - 2
                and j2 >= 1
            ):
                rate = battery.k * (j2 / (1.0 - battery.c) - j1 / battery.c)
                if rate > 0.0:
                    moved = list(per_battery)
                    moved[b] = (j1 + 1, j2 - 1)
                    generator[index, flat(i, p, moved)] += rate
            # Consumption: the policy's share of the workload current.
            current = weights[b] * workload.currents[i]
            if j1 >= 1 and current > 0.0:
                drained = list(per_battery)
                drained[b] = (j1 - 1, j2)
                generator[index, flat(i, p, drained)] += current / delta
    np.fill_diagonal(generator, generator.diagonal() - generator.sum(axis=1))

    initial = np.zeros(n_states)
    per_battery0 = [
        (
            grid.level_of(battery.available_capacity, dimension=1),
            grid.level_of(battery.bound_capacity, dimension=2) if grid.two_dimensional else 0,
        )
        for grid, battery in zip(grids, system.batteries)
    ]
    for i, mass in enumerate(workload.initial_distribution):
        if mass > 0.0:
            initial[flat(i, 0, per_battery0)] = mass

    failed_states = np.array(
        sorted(
            (i * n_phases + p) * n_cells + cell
            for cell in failed
            for i in range(workload.n_states)
            for p in range(n_phases)
        ),
        dtype=np.int64,
    )
    return generator, initial, failed_states


class TestProductAssembly:
    @settings(max_examples=25, deadline=None)
    @given(
        n_batteries=st.integers(min_value=2, max_value=3),
        capacity_levels=st.lists(
            st.floats(min_value=1.2, max_value=3.8), min_size=3, max_size=3
        ),
        c=st.sampled_from([1.0, 0.5, 0.625]),
        k=st.sampled_from([0.0, 0.3]),
        policy_name=st.sampled_from(["static-split", "round-robin", "best-of"]),
        failures=st.integers(min_value=1, max_value=3),
    )
    def test_kron_assembly_matches_enumeration(
        self, n_batteries, capacity_levels, c, k, policy_name, failures
    ):
        """The Kronecker-assembled generator equals the enumerated product chain."""
        delta = 1.0
        batteries = tuple(
            KiBaMParameters(capacity=capacity_levels[b] / max(c, 1e-9), c=c, k=k)
            for b in range(n_batteries)
        )
        system = MultiBatterySystem(
            workload=busy_idle_workload(),
            batteries=batteries,
            policy=get_policy(policy_name),
            failures_to_die=min(failures, n_batteries),
        )
        chain = system.discretize(delta)
        if chain.n_states > 2500:  # keep the dense reference cheap
            return
        generator, initial, failed_states = enumerate_product_chain(system, delta)

        np.testing.assert_allclose(
            dense_fallback(chain.generator), generator, atol=1e-12, rtol=1e-12
        )
        np.testing.assert_array_equal(chain.initial_distribution, initial)
        np.testing.assert_array_equal(np.sort(chain.empty_states), failed_states)

    def test_single_battery_product_chain_matches_discretize(self):
        """With N = 1 the product chain degenerates to the paper's expanded CTMC."""
        battery = KiBaMParameters(capacity=60.0, c=0.625, k=1e-3)
        workload = busy_idle_workload()
        delta = battery.available_capacity / 8
        single = discretize(KiBaMRM(workload=workload, battery=battery), delta)
        product = MultiBatterySystem(
            workload=workload,
            batteries=(battery,),
            policy=get_policy("static-split"),
            failures_to_die=1,
        ).discretize(delta)

        assert product.n_states == single.n_states
        np.testing.assert_allclose(
            dense_fallback(product.generator), dense_fallback(single.generator), atol=1e-12
        )
        np.testing.assert_array_equal(
            product.initial_distribution, single.initial_distribution
        )
        np.testing.assert_array_equal(
            np.sort(product.empty_states), np.sort(single.empty_states)
        )

    def test_failure_predicate_orders_cdfs(self):
        """A series pack (k=1) fails no later than a parallel bank (k=N)."""
        battery = KiBaMParameters(capacity=80.0, c=0.625, k=1e-3)
        times = np.linspace(0.0, 6000.0, 40)
        shared = dict(
            workload=busy_idle_workload(),
            batteries=(battery, battery),
            times=times,
            delta=battery.available_capacity / 8,
            policy="round-robin",
        )
        series = solve_lifetime(
            MultiBatteryProblem(failures_to_die=1, **shared), "mrm-uniformization"
        )
        parallel = solve_lifetime(
            MultiBatteryProblem(failures_to_die=2, **shared), "mrm-uniformization"
        )
        series_cdf = np.asarray(series.distribution.probabilities)
        parallel_cdf = np.asarray(parallel.distribution.probabilities)
        assert np.all(series_cdf >= parallel_cdf - 1e-12)
        assert np.max(series_cdf - parallel_cdf) > 0.05


class TestPolicies:
    def test_registry_round_trip(self):
        assert set(available_policies()) >= {"static-split", "round-robin", "best-of"}
        with pytest.raises(KeyError):
            get_policy("no-such-policy")
        with pytest.raises(ValueError):
            get_policy(get_policy("best-of"), tie_tolerance=1.0)

    def test_static_split_renormalises_over_survivors(self):
        policy = get_policy("static-split", weights=(0.5, 0.3, 0.2))
        levels = np.array([[3.0, 2.0, 1.0], [3.0, 2.0, 0.0]])
        alive = levels >= 1.0
        weights = policy.routing_weights(levels, alive)[0]
        np.testing.assert_allclose(weights[0], [0.5, 0.3, 0.2])
        np.testing.assert_allclose(weights[1], [0.5 / 0.8, 0.3 / 0.8, 0.0])

    def test_round_robin_skips_depleted_batteries(self):
        policy = get_policy("round-robin")
        levels = np.array([[0.0, 2.0, 1.0]])
        alive = levels >= 1.0
        weights = policy.routing_weights(levels, alive)
        np.testing.assert_allclose(weights[0, 0], [0.0, 1.0, 0.0])  # phase 0 -> next alive
        np.testing.assert_allclose(weights[1, 0], [0.0, 1.0, 0.0])
        np.testing.assert_allclose(weights[2, 0], [0.0, 0.0, 1.0])

    def test_best_of_splits_ties(self):
        policy = get_policy("best-of")
        levels = np.array([[2.0, 2.0, 1.0], [0.0, 3.0, 1.0]])
        alive = levels >= 1.0
        weights = policy.routing_weights(levels, alive)[0]
        np.testing.assert_allclose(weights[0], [0.5, 0.5, 0.0])
        np.testing.assert_allclose(weights[1], [0.0, 1.0, 0.0])

    def test_all_dead_rows_get_zero_weights(self):
        for name in available_policies():
            policy = get_policy(name)
            levels = np.zeros((1, 2))
            weights = policy.routing_weights(levels, levels >= 1.0)
            assert np.all(weights == 0.0)


class TestEngineThreading:
    def test_auto_accounts_for_product_space_size(self):
        battery = KiBaMParameters(capacity=150.0, c=0.625, k=1e-3)
        times = np.linspace(0.0, 4000.0, 20)
        coarse = MultiBatteryProblem(
            workload=busy_idle_workload(),
            batteries=(battery, battery),
            times=times,
            delta=battery.available_capacity / 8,
            failures_to_die=1,
        )
        fine = coarse.with_delta(battery.available_capacity / 40)
        assert choose_method(coarse) == "mrm-uniformization"
        assert fine.estimated_mrm_states() > 200_000
        assert choose_method(fine) == "monte-carlo"

    def test_analytic_never_claims_multibattery(self):
        # Two currents and no transfer would qualify a single battery for
        # the exact occupation-time algorithm; a bank must not be claimed.
        battery = KiBaMParameters(capacity=50.0, c=1.0, k=0.0)
        problem = MultiBatteryProblem(
            workload=onoff_workload(frequency=0.02, erlang_k=1),
            batteries=(battery, battery),
            times=np.linspace(0.0, 2000.0, 10),
            failures_to_die=1,
        )
        assert choose_method(problem) != "analytic"

    def test_scenario_batch_merges_identical_product_chains(self):
        battery = KiBaMParameters(capacity=80.0, c=0.625, k=1e-3)
        base = MultiBatteryProblem(
            workload=busy_idle_workload(),
            batteries=(battery, battery),
            times=np.linspace(0.0, 4000.0, 30),
            delta=battery.available_capacity / 8,
            policy="best-of",
            failures_to_die=1,
        )
        early = base.with_times(np.linspace(0.0, 4000.0, 17)).with_label("early")
        batch = ScenarioBatch([base, early])
        outcome = batch.run("mrm-uniformization")
        assert outcome.diagnostics["merged_groups"] == 1
        assert outcome.diagnostics["stacked_scenarios"] == 2
        solo = solve_lifetime(early, "mrm-uniformization")
        np.testing.assert_allclose(
            np.asarray(outcome[1].distribution.probabilities),
            np.asarray(solo.distribution.probabilities),
            atol=1e-10,
        )

    def test_sweep_fingerprints_separate_policies_and_predicates(self):
        battery = KiBaMParameters(capacity=80.0, c=0.625, k=1e-3)
        times = np.linspace(0.0, 4000.0, 15)
        shared = dict(
            workload=busy_idle_workload(),
            batteries=(battery, battery),
            times=times,
            delta=battery.available_capacity / 8,
        )
        problems = [
            MultiBatteryProblem(policy="static-split", failures_to_die=1, **shared),
            MultiBatteryProblem(policy="best-of", failures_to_die=1, **shared),
            MultiBatteryProblem(policy="best-of", failures_to_die=2, **shared),
            MultiBatteryProblem(
                policy="static-split",
                policy_params={"weights": (0.7, 0.3)},
                failures_to_die=1,
                **shared,
            ),
        ]
        fingerprints = {
            scenario_fingerprint(problem, "mrm-uniformization") for problem in problems
        }
        assert len(fingerprints) == len(problems)

    def test_sweep_spec_policy_axis_and_cache(self):
        battery = KiBaMParameters(capacity=80.0, c=0.625, k=1e-3)
        spec = SweepSpec(
            workloads=[busy_idle_workload()],
            batteries=[(battery, battery)],
            times=np.linspace(0.0, 4000.0, 20),
            deltas=[battery.available_capacity / 8],
            methods=["mrm-uniformization"],
            policies=["static-split", "best-of"],
            failures_to_die=1,
        )
        assert len(spec) == 2
        cache = SweepCache()
        first = run_sweep(spec, options=RunOptions(max_workers=1, cache=cache))
        assert first.diagnostics["n_solved"] == 2
        again = run_sweep(spec, options=RunOptions(max_workers=1, cache=cache))
        assert again.diagnostics["cache_hits"] == 2
        assert again.diagnostics["n_solved"] == 0
        for before, after in zip(first, again):
            np.testing.assert_array_equal(
                np.asarray(before.distribution.probabilities),
                np.asarray(after.distribution.probabilities),
            )

    def test_single_battery_banks_never_stack_merge(self):
        """A 1-battery bank is still a bank: no capacity-stacked merging.

        Transfer-free single-battery problems merge across capacities via
        the stacked initial-vector path; bank problems must stay on the
        identical-chain-key path even with ``N = 1`` (their product chains
        carry the policy and predicate), and must not share a group with a
        plain :class:`LifetimeProblem` of equal ``c``/``k``/``delta``.
        """
        from repro.engine.batch import chain_merge_key

        workload = busy_idle_workload()
        times = np.linspace(0.0, 2000.0, 25)
        big = KiBaMParameters(capacity=60.0, c=1.0, k=0.0)
        small = KiBaMParameters(capacity=40.0, c=1.0, k=0.0)
        delta = 5.0
        banks = [
            MultiBatteryProblem(
                workload=workload, batteries=(battery,), times=times, delta=delta
            )
            for battery in (big, small)
        ]
        plain = LifetimeProblem(
            workload=workload, battery=big, times=times, delta=delta
        )
        keys = {chain_merge_key(problem) for problem in banks + [plain]}
        assert len(keys) == 3

        outcome = ScenarioBatch(banks).run("mrm-uniformization")
        assert outcome.diagnostics["merged_groups"] == 0
        for problem, result in zip(banks, outcome):
            solo = solve_lifetime(problem, "mrm-uniformization")
            np.testing.assert_allclose(
                np.asarray(result.distribution.probabilities),
                np.asarray(solo.distribution.probabilities),
                atol=1e-12,
            )
        # And the bank (N=1, k=1) agrees with the plain single-battery chain.
        np.testing.assert_allclose(
            np.asarray(outcome[0].distribution.probabilities),
            np.asarray(solve_lifetime(plain, "mrm-uniformization").distribution.probabilities),
            atol=1e-10,
        )
        # The Monte-Carlo dispatch routes 1-battery banks to the system
        # simulator (policy and predicate intact) without error.
        mc = solve_lifetime(
            MultiBatteryProblem(
                workload=workload,
                batteries=(small,),
                times=times,
                n_runs=100,
                seed=3,
            ),
            "monte-carlo",
        )
        assert mc.diagnostics["cdf_complete"]

    def test_sweep_monte_carlo_results_ignore_mrm_coscheduling(self):
        """Cached sweep MC results must not depend on co-scheduled MRM solves.

        The steady-state horizon cap is disabled inside ``run_sweep``:
        whether an MRM solve of the same chain lands in the same worker
        chunk is an accident of chunking, and one fingerprint must always
        map to one result.
        """
        battery = KiBaMParameters(capacity=60.0, c=0.625, k=1e-3)
        workload = WorkloadModel(
            state_names=("busy", "idle"),
            generator=np.array([[-1.0, 1.0], [1.0, -1.0]]),
            currents=np.array([0.5, 0.05]),
            initial_distribution=np.array([1.0, 0.0]),
        )
        spec = SweepSpec(
            workloads=[workload],
            batteries=[battery],
            times=np.linspace(0.0, 1000.0, 101),
            deltas=[battery.available_capacity / 25],
            n_runs=150,
            methods=["mrm-uniformization", "monte-carlo"],
        )
        swept = run_sweep(spec, options=RunOptions(max_workers=1))
        mc_with_mrm = swept[1]
        # The canonical result for this fingerprint: the same generated
        # scenario solved standalone (no workspace, hence no cap).
        problems, methods = spec.scenarios()
        assert methods[1] == "monte-carlo"
        standalone = solve_lifetime(problems[1], "monte-carlo")
        assert not mc_with_mrm.diagnostics["horizon_capped_by_steady_state"]
        assert mc_with_mrm.diagnostics["horizon"] == standalone.diagnostics["horizon"]
        np.testing.assert_array_equal(
            np.asarray(mc_with_mrm.distribution.probabilities),
            np.asarray(standalone.distribution.probabilities),
        )

    def test_sweep_spec_rejects_policies_on_single_batteries(self):
        battery = KiBaMParameters(capacity=80.0, c=0.625, k=1e-3)
        spec = SweepSpec(
            workloads=[busy_idle_workload()],
            batteries=[battery],
            times=np.linspace(0.0, 4000.0, 10),
            policies=["best-of"],
        )
        with pytest.raises(ValueError, match="policy axis"):
            spec.scenarios()

    def test_with_battery_is_rejected_on_banks(self):
        battery = KiBaMParameters(capacity=80.0, c=0.625, k=1e-3)
        problem = MultiBatteryProblem(
            workload=busy_idle_workload(),
            batteries=(battery, battery),
            times=np.linspace(0.0, 4000.0, 10),
        )
        with pytest.raises(TypeError):
            problem.with_battery(battery)
        grown = problem.with_batteries((battery, battery, battery))
        assert grown.n_batteries == 3
        # The defaulted k = N was resolved at construction and carries over.
        assert grown.failures_to_die == 2


class TestAgreementAndSimulation:
    @pytest.mark.parametrize(
        "policy, params",
        [
            ("static-split", {"weights": (0.7, 0.3)}),
            ("round-robin", {"switch_rate": 0.05}),
            ("best-of", {}),
        ],
    )
    def test_mrm_and_monte_carlo_agree(self, policy, params):
        """Product-space MRM and the policy simulator tell the same story.

        Single-well banks (c = 1) keep the discretisation error small, so
        the two independently implemented machineries must agree tightly.
        """
        battery = KiBaMParameters(capacity=60.0, c=1.0, k=0.0)
        times = np.linspace(0.0, 1500.0, 61)
        problem = MultiBatteryProblem(
            workload=busy_idle_workload(),
            batteries=(battery, battery),
            times=times,
            delta=battery.available_capacity / 80,
            policy=policy,
            policy_params=params,
            failures_to_die=1,
            n_runs=2500,
            seed=20070625,
        )
        approx = solve_lifetime(problem, "mrm-uniformization")
        simulated = solve_lifetime(problem, "monte-carlo")
        deviation = float(
            np.max(
                np.abs(
                    np.asarray(approx.distribution.probabilities)
                    - np.asarray(simulated.distribution.probabilities)
                )
            )
        )
        assert approx.diagnostics["cdf_complete"]
        assert deviation < 0.06, f"{policy}: max CDF deviation {deviation:.3f}"

    def test_policy_ordering_on_series_pack(self):
        """best-of >= round-robin >= skewed static split (mean lifetime)."""
        battery = KiBaMParameters(capacity=150.0, c=0.625, k=1e-3)
        base = MultiBatteryProblem(
            workload=busy_idle_workload(),
            batteries=(battery, battery),
            times=np.linspace(0.0, 6000.0, 61),
            delta=battery.available_capacity / 10,
            failures_to_die=1,
        )
        means = {}
        for policy, params in [
            ("static-split", {"weights": (0.75, 0.25)}),
            ("round-robin", {"switch_rate": 0.05}),
            ("best-of", {}),
        ]:
            result = solve_lifetime(
                base.with_policy(policy, **params), "mrm-uniformization"
            )
            means[policy] = result.distribution.mean_lifetime()
        assert means["best-of"] > means["round-robin"] > means["static-split"]

    def test_simulator_reproducibility_and_censoring(self):
        battery = KiBaMParameters(capacity=40.0, c=1.0, k=0.0)
        workload = busy_idle_workload()
        kwargs = dict(failures_to_die=1, n_runs=200, seed=99)
        first = simulate_system_lifetime_distribution(
            workload, (battery, battery), "best-of", **kwargs
        )
        second = simulate_system_lifetime_distribution(
            workload, (battery, battery), "best-of", **kwargs
        )
        np.testing.assert_array_equal(first.samples, second.samples)
        assert np.isfinite(first.samples).all()
        # A hopeless horizon censors every run.
        censored = simulate_system_lifetime_distribution(
            workload, (battery, battery), "best-of",
            failures_to_die=1, n_runs=50, seed=99, horizon=1.0,
        )
        assert np.isinf(censored.samples).all()

    def test_monte_carlo_horizon_capped_by_steady_state(self):
        """The MC solver caps its horizon at the MRM's detected steady state.

        A fast-mixing workload makes the lifetime CDF sharp (many sojourns
        per lifetime), so the incremental path detects the flat tail well
        before the mean-current-based default horizon runs out.
        """
        battery = KiBaMParameters(capacity=60.0, c=0.625, k=1e-3)
        workload = WorkloadModel(
            state_names=("busy", "idle"),
            generator=np.array([[-1.0, 1.0], [1.0, -1.0]]),
            currents=np.array([0.5, 0.05]),
            initial_distribution=np.array([1.0, 0.0]),
        )
        problem = LifetimeProblem(
            workload=workload,
            battery=battery,
            times=np.linspace(0.0, 1000.0, 101),
            delta=battery.available_capacity / 25,
            n_runs=300,
            seed=11,
        )
        workspace = SolveWorkspace()
        approx = solve_lifetime(problem, "mrm-uniformization", workspace=workspace)
        steady_state = approx.diagnostics["steady_state_time"]
        assert steady_state is not None

        capped = solve_lifetime(problem, "monte-carlo", workspace=workspace)
        assert capped.diagnostics["horizon_capped_by_steady_state"]
        assert capped.diagnostics["steady_state_horizon_hint"] == steady_state
        assert capped.diagnostics["horizon"] == pytest.approx(1.25 * steady_state)

        # Without the workspace (no hint) the default horizon is used.
        plain = solve_lifetime(problem, "monte-carlo")
        assert not plain.diagnostics["horizon_capped_by_steady_state"]
        assert plain.diagnostics["horizon"] > capped.diagnostics["horizon"]
        # The flat tail carries no lifetime mass: the capped estimate agrees.
        assert capped.diagnostics["mean_lifetime_seconds"] == pytest.approx(
            plain.diagnostics["mean_lifetime_seconds"], rel=0.1
        )

    def test_system_horizon_cap_for_banks(self):
        battery = KiBaMParameters(capacity=120.0, c=0.5, k=0.0)
        workload = WorkloadModel(
            state_names=("busy", "idle"),
            generator=np.array([[-20.0, 20.0], [20.0, -20.0]]),
            currents=np.array([0.5, 0.05]),
            initial_distribution=np.array([1.0, 0.0]),
        )
        problem = MultiBatteryProblem(
            workload=workload,
            batteries=(battery, battery),
            times=np.linspace(0.0, 1400.0, 141),
            delta=battery.available_capacity / 12,
            policy="best-of",
            failures_to_die=1,
            n_runs=200,
            seed=5,
        )
        workspace = SolveWorkspace()
        solve_lifetime(problem, "mrm-uniformization", workspace=workspace)
        capped = solve_lifetime(problem, "monte-carlo", workspace=workspace)
        assert capped.diagnostics["horizon_capped_by_steady_state"]
        assert capped.diagnostics["horizon"] < default_system_horizon(
            problem.workload, problem.batteries
        )
