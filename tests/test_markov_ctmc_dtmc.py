"""Tests for the CTMC and DTMC façade classes."""

import numpy as np
import pytest

from repro.markov.ctmc import CTMC
from repro.markov.dtmc import DTMC


class TestDTMC:
    def test_rejects_non_stochastic_matrix(self):
        with pytest.raises(ValueError):
            DTMC(np.array([[0.5, 0.2], [0.0, 1.0]]))

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            DTMC(np.array([[1.5, -0.5], [0.0, 1.0]]))

    def test_step_evolves_distribution(self):
        chain = DTMC(np.array([[0.0, 1.0], [1.0, 0.0]]))
        distribution = chain.step(np.array([1.0, 0.0]), n_steps=3)
        assert np.allclose(distribution, [0.0, 1.0])

    def test_stationary_distribution(self):
        chain = DTMC(np.array([[0.5, 0.5], [0.25, 0.75]]))
        pi = chain.stationary_distribution()
        assert np.allclose(pi, pi @ chain.transition_matrix)
        assert pi.sum() == pytest.approx(1.0)

    def test_sample_path_length_and_range(self, rng):
        chain = DTMC(np.array([[0.1, 0.9], [0.6, 0.4]]))
        path = chain.sample_path(0, 20, rng)
        assert path.shape == (21,)
        assert path[0] == 0
        assert np.all((path >= 0) & (path < 2))

    def test_state_names_default(self):
        chain = DTMC(np.eye(3))
        assert chain.state_names == ["0", "1", "2"]


class TestCTMC:
    def test_default_initial_distribution(self, three_state_generator):
        chain = CTMC(three_state_generator)
        assert np.allclose(chain.initial_distribution, [1.0, 0.0, 0.0])

    def test_state_name_lookup(self, three_state_generator):
        chain = CTMC(three_state_generator, state_names=["a", "b", "c"])
        assert chain.state_index("b") == 1
        with pytest.raises(KeyError):
            chain.state_index("d")

    def test_exit_rates_and_absorbing(self):
        generator = np.array([[-2.0, 2.0], [0.0, 0.0]])
        chain = CTMC(generator)
        assert np.allclose(chain.exit_rates(), [2.0, 0.0])
        assert not chain.is_absorbing(0)
        assert chain.is_absorbing(1)

    def test_embedded_and_uniformized_chains(self, three_state_generator):
        chain = CTMC(three_state_generator)
        embedded = chain.embedded_dtmc()
        assert np.allclose(embedded.transition_matrix.sum(axis=1), 1.0)
        uniformized = chain.uniformized_dtmc()
        assert np.allclose(uniformized.transition_matrix.sum(axis=1), 1.0)

    def test_transient_and_steady_state_agree_in_the_limit(self, three_state_generator):
        chain = CTMC(three_state_generator)
        late = chain.transient_distribution(500.0)
        assert np.allclose(late, chain.steady_state(), atol=1e-6)

    def test_probability_in(self, three_state_generator):
        chain = CTMC(three_state_generator)
        total = chain.probability_in([0, 1, 2], 0.7)
        assert total == pytest.approx(1.0, abs=1e-8)

    def test_invalid_initial_distribution_rejected(self, three_state_generator):
        with pytest.raises(ValueError):
            CTMC(three_state_generator, initial_distribution=[0.5, 0.2, 0.2])

    def test_mismatched_state_names_rejected(self, three_state_generator):
        with pytest.raises(ValueError):
            CTMC(three_state_generator, state_names=["only", "two"])
