"""Tests for the MRM container, the inhomogeneous MRM and the explicit scheme."""

import numpy as np
import pytest

from repro.core.kibamrm import KiBaMRM
from repro.reward.discretisation import discretised_reward_distribution
from repro.reward.inhomogeneous import InhomogeneousMRM, from_kibamrm
from repro.reward.mrm import MarkovRewardModel
from repro.reward.occupation import two_level_lifetime_cdf
from repro.workload.onoff import onoff_workload
from repro.workload.simple import simple_workload


@pytest.fixture
def onoff_mrm():
    workload = onoff_workload(frequency=1.0, erlang_k=1)
    return MarkovRewardModel(
        generator=workload.generator,
        initial_distribution=workload.initial_distribution,
        rewards=workload.currents,
        state_names=workload.state_names,
    )


class TestMarkovRewardModel:
    def test_distinct_rewards(self, onoff_mrm):
        assert np.allclose(onoff_mrm.distinct_rewards, [0.0, 0.96])

    def test_expected_accumulated_reward_constant_chain(self):
        mrm = MarkovRewardModel(np.zeros((1, 1)), [1.0], [2.5])
        assert mrm.expected_accumulated_reward(4.0) == pytest.approx(10.0, rel=1e-6)

    def test_expected_reward_matches_steady_state_for_long_horizons(self, onoff_mrm):
        # The on/off model spends half its time drawing 0.96 A.
        expected = onoff_mrm.expected_accumulated_reward(2000.0)
        assert expected == pytest.approx(0.48 * 2000.0, rel=0.02)

    def test_reward_bounds(self, onoff_mrm):
        assert onoff_mrm.reward_ceiling(10.0) == pytest.approx(9.6)
        assert onoff_mrm.reward_floor(10.0) == 0.0

    def test_exceedance_two_levels(self, onoff_mrm):
        probability = onoff_mrm.accumulated_reward_exceeds(15000.0, 7200.0)
        assert 0.3 < probability < 0.7

    def test_exceedance_rejects_multilevel(self):
        workload = simple_workload()
        mrm = MarkovRewardModel(
            workload.generator, workload.initial_distribution, workload.currents
        )
        with pytest.raises(NotImplementedError):
            mrm.accumulated_reward_exceeds(10.0, 1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MarkovRewardModel(np.zeros((2, 2)), [1.0, 0.0], [1.0])


class TestInhomogeneousMRM:
    def test_from_kibamrm_reward_rates(self, paper_battery):
        workload = onoff_workload(frequency=1.0, erlang_k=1)
        kibamrm = KiBaMRM(workload=workload, battery=paper_battery)
        inhomogeneous = from_kibamrm(kibamrm)
        assert inhomogeneous.n_states == 2
        assert inhomogeneous.upper_bounds == pytest.approx((4500.0, 2700.0))
        # At full charge the heights are equal: no transfer, pure drain.
        dy1, dy2 = inhomogeneous.reward_derivatives(0, 4500.0, 2700.0)
        assert dy1 == pytest.approx(-0.96)
        assert dy2 == pytest.approx(0.0)
        # After a partial discharge the bound well replenishes the available well.
        dy1, dy2 = inhomogeneous.reward_derivatives(1, 3000.0, 2700.0)
        assert dy1 > 0.0
        assert dy2 == pytest.approx(-dy1)

    def test_generator_is_level_independent(self, paper_battery):
        workload = onoff_workload(frequency=1.0)
        inhomogeneous = from_kibamrm(KiBaMRM(workload=workload, battery=paper_battery))
        assert np.allclose(inhomogeneous.generator(100.0, 50.0), workload.generator)

    def test_validation(self):
        with pytest.raises(ValueError):
            InhomogeneousMRM(
                n_states=1,
                generator_at=lambda y1, y2: np.zeros((1, 1)),
                reward_rates_at=lambda y1, y2: np.zeros((1, 2)),
                initial_distribution=np.array([1.0]),
                initial_rewards=(5.0, 0.0),
                lower_bounds=(0.0, 0.0),
                upper_bounds=(1.0, 0.0),
            )


class TestExplicitDiscretisation:
    def test_matches_exact_occupation_result(self):
        workload = onoff_workload(frequency=1.0, erlang_k=1)
        capacity = 720.0  # a small battery for a fast test
        times = np.array([1200.0, 1500.0, 1800.0])
        exact = two_level_lifetime_cdf(
            workload.generator,
            workload.initial_distribution,
            workload.currents,
            capacity,
            times,
        )
        approximate = discretised_reward_distribution(
            workload.generator,
            workload.initial_distribution,
            workload.currents,
            capacity,
            times,
            delta=2.4,
        )
        assert np.allclose(approximate, exact, atol=0.08)

    def test_probabilities_are_monotone_in_time(self):
        workload = onoff_workload(frequency=1.0)
        result = discretised_reward_distribution(
            workload.generator,
            workload.initial_distribution,
            workload.currents,
            720.0,
            np.linspace(600.0, 2400.0, 7),
            delta=4.8,
        )
        assert np.all(np.diff(result) >= -1e-9)

    def test_requires_commensurate_rates(self):
        workload = simple_workload()
        with pytest.raises(ValueError):
            discretised_reward_distribution(
                workload.generator,
                workload.initial_distribution,
                workload.currents,
                100.0,
                [10.0],
                delta=1.0,
                dt=1.7,
            )

    def test_zero_rewards_never_exceed(self):
        generator = np.array([[-1.0, 1.0], [1.0, -1.0]])
        result = discretised_reward_distribution(
            generator, [1.0, 0.0], [0.0, 0.0], 10.0, [100.0], delta=1.0
        )
        assert result[0] == 0.0

    def test_input_validation(self):
        generator = np.array([[-1.0, 1.0], [1.0, -1.0]])
        with pytest.raises(ValueError):
            discretised_reward_distribution(generator, [1.0, 0.0], [1.0, 0.0], -1.0, [1.0], delta=0.1)
        with pytest.raises(ValueError):
            discretised_reward_distribution(generator, [1.0, 0.0], [1.0, 0.0], 1.0, [1.0], delta=0.0)
        with pytest.raises(ValueError):
            discretised_reward_distribution(generator, [1.0, 0.0], [-1.0, 0.0], 1.0, [1.0], delta=0.1)
