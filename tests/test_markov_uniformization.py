"""Tests for the uniformisation-based transient solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov.transient import expm_transient
from repro.markov.uniformization import (
    uniformization_rate,
    uniformized_transient,
)


class TestUniformizationRate:
    def test_rate_dominates_exit_rates(self, three_state_generator):
        rate = uniformization_rate(three_state_generator)
        assert rate >= 5.0

    def test_all_absorbing_chain_gets_positive_rate(self):
        assert uniformization_rate(np.zeros((2, 2))) > 0


class TestTransientSolution:
    def test_matches_matrix_exponential(self, three_state_generator):
        alpha = np.array([1.0, 0.0, 0.0])
        for time in (0.0, 0.1, 0.7, 2.5):
            expected = expm_transient(three_state_generator, alpha, time)
            result = uniformized_transient(three_state_generator, alpha, [time])
            assert np.allclose(result.distributions[0], expected, atol=1e-8)

    def test_multiple_times_match_individual_solutions(self, three_state_generator):
        alpha = np.array([0.2, 0.3, 0.5])
        times = [0.1, 0.5, 1.0, 4.0]
        combined = uniformized_transient(three_state_generator, alpha, times)
        for index, time in enumerate(times):
            single = uniformized_transient(three_state_generator, alpha, [time])
            assert np.allclose(combined.distributions[index], single.distributions[0], atol=1e-10)

    def test_distributions_are_probability_vectors(self, three_state_generator):
        alpha = np.array([0.0, 1.0, 0.0])
        result = uniformized_transient(three_state_generator, alpha, [0.3, 3.0, 30.0])
        assert np.all(result.distributions >= -1e-12)
        assert np.allclose(result.distributions.sum(axis=1), 1.0, atol=1e-8)

    def test_long_horizon_approaches_steady_state(self, three_state_generator):
        from repro.markov.steady_state import steady_state_distribution

        alpha = np.array([1.0, 0.0, 0.0])
        result = uniformized_transient(three_state_generator, alpha, [200.0])
        assert np.allclose(result.distributions[0], steady_state_distribution(three_state_generator), atol=1e-6)

    def test_time_zero_returns_initial_distribution(self, three_state_generator):
        alpha = np.array([0.25, 0.25, 0.5])
        result = uniformized_transient(three_state_generator, alpha, 0.0)
        assert np.allclose(result.distributions[0], alpha)

    def test_sparse_generator_supported(self, three_state_generator):
        alpha = np.array([1.0, 0.0, 0.0])
        dense = uniformized_transient(three_state_generator, alpha, [1.0]).distributions
        sparse = uniformized_transient(sp.csr_matrix(three_state_generator), alpha, [1.0]).distributions
        assert np.allclose(dense, sparse, atol=1e-12)

    def test_absorbing_chain_accumulates_mass(self):
        generator = np.array([[-1.0, 1.0], [0.0, 0.0]])
        alpha = np.array([1.0, 0.0])
        result = uniformized_transient(generator, alpha, [0.5, 1.0, 5.0])
        absorbed = result.distributions[:, 1]
        assert np.all(np.diff(absorbed) > 0)
        assert absorbed[-1] == pytest.approx(1.0 - np.exp(-5.0), abs=1e-8)

    def test_negative_time_rejected(self, three_state_generator):
        with pytest.raises(ValueError):
            uniformized_transient(three_state_generator, [1.0, 0.0, 0.0], [-1.0])

    def test_mismatched_initial_distribution_rejected(self, three_state_generator):
        with pytest.raises(ValueError):
            uniformized_transient(three_state_generator, [1.0, 0.0], [1.0])

    def test_invalid_initial_distribution_rejected(self, three_state_generator):
        with pytest.raises(ValueError):
            uniformized_transient(three_state_generator, [0.7, 0.0, 0.0], [1.0])

    def test_at_accessor(self, three_state_generator):
        alpha = np.array([1.0, 0.0, 0.0])
        result = uniformized_transient(three_state_generator, alpha, [0.5, 1.5])
        assert np.allclose(result.at(1.5), result.distributions[1])
        with pytest.raises(KeyError):
            result.at(2.5)

    def test_custom_rate_gives_same_answer(self, three_state_generator):
        alpha = np.array([1.0, 0.0, 0.0])
        default = uniformized_transient(three_state_generator, alpha, [1.0])
        custom = uniformized_transient(three_state_generator, alpha, [1.0], rate=20.0)
        assert np.allclose(default.distributions, custom.distributions, atol=1e-9)

    def test_callback_invoked_for_long_runs(self, three_state_generator):
        calls = []
        alpha = np.array([1.0, 0.0, 0.0])
        uniformized_transient(
            three_state_generator,
            alpha,
            [400.0],
            callback=lambda n, total: calls.append((n, total)),
        )
        assert calls, "expected progress callbacks for a long uniformisation run"
