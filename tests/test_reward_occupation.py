"""Tests for the exact occupation-time (two-level reward) algorithm."""

import numpy as np
import pytest

from repro.reward.occupation import (
    occupation_time_distribution,
    occupation_time_exceeds,
    two_level_lifetime_cdf,
    two_level_reward_distribution,
)
from repro.workload.onoff import onoff_workload


class TestSingleStateChains:
    def test_always_high_state(self):
        generator = np.zeros((1, 1))
        result = occupation_time_distribution(generator, [1.0], [0], time=5.0, fractions=[0.0, 0.5, 0.99])
        assert np.allclose(result, 1.0)

    def test_never_high_state(self):
        generator = np.zeros((1, 1))
        result = occupation_time_distribution(generator, [1.0], [], time=5.0, fractions=[0.0, 0.5])
        assert np.allclose(result, 0.0)

    def test_fraction_one_is_impossible_to_exceed(self):
        generator = np.zeros((1, 1))
        result = occupation_time_distribution(generator, [1.0], [0], time=5.0, fractions=[1.0])
        assert result[0] == 0.0


class TestTwoStateAnalytic:
    def test_exponential_up_time(self):
        # State 0 (high) jumps to absorbing state 1 with rate 1: the occupation
        # time of state 0 within [0, t] is min(Exp(1), t), so
        # Pr{O > x t} = exp(-x t) for x < 1.
        generator = np.array([[-1.0, 1.0], [0.0, 0.0]])
        time = 4.0
        fractions = np.array([0.1, 0.3, 0.6, 0.9])
        result = occupation_time_distribution(generator, [1.0, 0.0], [0], time, fractions)
        assert np.allclose(result, np.exp(-fractions * time), atol=1e-8)

    def test_complementary_subsets_sum_to_one(self, rng):
        # Pr{O_high > x t} + Pr{O_low > (1-x) t} = 1 for continuous O.
        generator = np.array([[-2.0, 2.0], [3.0, -3.0]])
        alpha = [0.5, 0.5]
        time = 3.0
        x = 0.37
        high = occupation_time_distribution(generator, alpha, [0], time, [x])[0]
        low = occupation_time_distribution(generator, alpha, [1], time, [1.0 - x])[0]
        assert high + low == pytest.approx(1.0, abs=1e-8)

    def test_matches_monte_carlo(self, rng):
        generator = np.array([[-1.5, 1.5], [0.7, -0.7]])
        alpha = np.array([1.0, 0.0])
        time = 5.0
        fractions = [0.3, 0.5, 0.8]
        exact = occupation_time_distribution(generator, alpha, [0], time, fractions)

        # Direct Monte-Carlo estimate of the occupation time of state 0.
        n_runs = 4000
        exceed_counts = np.zeros(len(fractions))
        for _ in range(n_runs):
            state, elapsed, occupation = 0, 0.0, 0.0
            while elapsed < time:
                rate = -generator[state, state]
                sojourn = rng.exponential(1.0 / rate)
                sojourn = min(sojourn, time - elapsed)
                if state == 0:
                    occupation += sojourn
                elapsed += sojourn
                state = 1 - state
            exceed_counts += occupation > np.asarray(fractions) * time
        estimate = exceed_counts / n_runs
        assert np.allclose(exact, estimate, atol=0.03)


class TestExpectedValueConsistency:
    def test_mean_occupation_matches_integrated_probability(self, simple_model):
        # E[O(t)] obtained by integrating Pr{O > x t} over x in [0, 1] must
        # match the integral of the transient probability of the high states.
        from repro.markov.transient import cumulative_state_probabilities

        generator = simple_model.generator * 3600.0  # work in hours
        alpha = simple_model.initial_distribution
        high = [simple_model.state_index("send")]
        time = 10.0
        xs = np.linspace(0.0, 1.0, 201)
        tail = occupation_time_distribution(generator, alpha, high, time, xs)
        mean_from_tail = np.trapezoid(tail, xs) * time
        occupancy = cumulative_state_probabilities(generator, alpha, time, n_points=401)
        assert mean_from_tail == pytest.approx(occupancy[high[0]], rel=2e-3)


class TestTwoLevelRewardDistribution:
    def test_constant_reward_is_deterministic(self):
        generator = np.array([[-1.0, 1.0], [1.0, -1.0]])
        result = two_level_reward_distribution(
            generator, [1.0, 0.0], [2.0, 2.0], time=3.0, thresholds=[5.0, 7.0]
        )
        assert np.allclose(result, [1.0, 0.0])

    def test_rejects_three_levels(self):
        generator = np.zeros((3, 3))
        with pytest.raises(ValueError):
            two_level_reward_distribution(
                generator, [1.0, 0.0, 0.0], [0.0, 1.0, 2.0], time=1.0, thresholds=[0.5]
            )

    def test_offset_reward_levels(self):
        # Rewards {1, 3}: Y(t) = t + 2 O_high(t).
        generator = np.array([[-1.0, 1.0], [1.0, -1.0]])
        alpha = [1.0, 0.0]
        time = 2.0
        threshold = 4.0
        direct = two_level_reward_distribution(generator, alpha, [3.0, 1.0], time, [threshold])[0]
        fraction = (threshold - 1.0 * time) / ((3.0 - 1.0) * time)
        via_occupation = occupation_time_distribution(generator, alpha, [0], time, [fraction])[0]
        assert direct == pytest.approx(via_occupation, abs=1e-12)


class TestLifetimeCdf:
    def test_onoff_lifetime_is_near_deterministic(self):
        workload = onoff_workload(frequency=1.0, erlang_k=1)
        capacity = 7200.0
        times = np.array([13000.0, 14500.0, 15000.0, 15500.0, 17000.0])
        cdf = two_level_lifetime_cdf(
            workload.generator,
            workload.initial_distribution,
            workload.currents,
            capacity,
            times,
        )
        assert np.all(np.diff(cdf) >= -1e-9)
        assert cdf[0] < 1e-6
        assert cdf[2] == pytest.approx(0.5, abs=0.05)
        assert cdf[-1] > 1.0 - 1e-6

    def test_before_minimum_drain_time_probability_is_zero(self):
        workload = onoff_workload(frequency=1.0, erlang_k=1)
        # Even if the device were always on, draining 7200 As at 0.96 A takes
        # 7500 s, so the battery cannot be empty at 7000 s.
        cdf = two_level_lifetime_cdf(
            workload.generator,
            workload.initial_distribution,
            workload.currents,
            7200.0,
            [7000.0],
        )
        assert cdf[0] == pytest.approx(0.0, abs=1e-9)

    def test_erlang_k_sharpens_the_distribution(self):
        capacity = 7200.0
        times = np.array([14600.0, 15400.0])
        spreads = []
        for k in (1, 4):
            workload = onoff_workload(frequency=1.0, erlang_k=k)
            cdf = two_level_lifetime_cdf(
                workload.generator,
                workload.initial_distribution,
                workload.currents,
                capacity,
                times,
            )
            spreads.append(float(cdf[1] - cdf[0]))
        # More deterministic phases concentrate more mass between the two
        # time points around the mean lifetime.
        assert spreads[1] > spreads[0]

    def test_zero_capacity_rejected(self):
        workload = onoff_workload(frequency=1.0)
        with pytest.raises(ValueError):
            two_level_lifetime_cdf(
                workload.generator,
                workload.initial_distribution,
                workload.currents,
                0.0,
                [1.0],
            )

    def test_negative_time_rejected(self):
        workload = onoff_workload(frequency=1.0)
        with pytest.raises(ValueError):
            occupation_time_exceeds(
                workload.generator, workload.initial_distribution, [0], [(-1.0, 0.5)]
            )
