"""Tests of the ``repro.api`` public facade.

The facade is the documented surface: three verbs (``solve`` / ``sweep``
/ ``serve``) plus the blessed types, all named in an explicit
``__all__``.  The old deep-import paths must keep working unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
import repro.api as api
from repro.battery.parameters import KiBaMParameters
from repro.workload.base import WorkloadModel

TIMES = np.linspace(0.0, 300.0, 16)

WORKLOAD = WorkloadModel(
    state_names=("busy", "idle"),
    generator=np.array([[-0.02, 0.02], [0.02, -0.02]]),
    currents=np.array([1.0, 0.05]),
    initial_distribution=np.array([1.0, 0.0]),
)

BATTERY = KiBaMParameters(capacity=60.0, c=0.625, k=1e-3)


def make_problem() -> "api.LifetimeProblem":
    return api.LifetimeProblem(
        workload=WORKLOAD, battery=BATTERY, times=TIMES, delta=2.0, epsilon=1e-6
    )


class TestSurface:
    def test_all_names_exist_and_are_exhaustive(self) -> None:
        assert sorted(api.__all__) == sorted(set(api.__all__))
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_verbs_are_present(self) -> None:
        assert callable(api.solve)
        assert callable(api.sweep)
        assert callable(api.serve)

    def test_facade_reexports_are_the_deep_objects(self) -> None:
        from repro.engine.options import RunOptions
        from repro.engine.problem import LifetimeProblem
        from repro.engine.result import LifetimeResult
        from repro.engine.sweep import SweepCache, SweepSpec, scenario_fingerprint
        from repro.service import LifetimeQuery, LifetimeService

        assert api.LifetimeProblem is LifetimeProblem
        assert api.LifetimeResult is LifetimeResult
        assert api.LifetimeQuery is LifetimeQuery
        assert api.LifetimeService is LifetimeService
        assert api.RunOptions is RunOptions
        assert api.SweepSpec is SweepSpec
        assert api.SweepCache is SweepCache
        assert api.scenario_fingerprint is scenario_fingerprint

    def test_old_entry_points_keep_working(self) -> None:
        from repro.engine import run_sweep, solve_lifetime
        from repro.engine.registry import solve_lifetime as deep_solve
        from repro.engine.sweep import run_sweep as deep_sweep

        assert solve_lifetime is deep_solve
        assert run_sweep is deep_sweep
        assert repro.solve_lifetime is deep_solve
        assert repro.run_sweep is deep_sweep

    def test_top_level_exports_service_types(self) -> None:
        assert repro.LifetimeService is api.LifetimeService
        assert repro.LifetimeQuery is api.LifetimeQuery
        assert repro.RunOptions is api.RunOptions
        for name in ("LifetimeQuery", "LifetimeService", "RunOptions"):
            assert name in repro.__all__


class TestVerbs:
    def test_solve(self) -> None:
        result = api.solve(make_problem(), "mrm-uniformization")
        assert isinstance(result, api.LifetimeResult)
        assert result.method == "mrm-uniformization"
        assert float(result.probabilities[-1]) > 0.0

    def test_solve_with_workspace(self) -> None:
        workspace = api.SolveWorkspace()
        api.solve(make_problem(), "mrm-uniformization", workspace=workspace)
        assert workspace.diagnostics()["chain_builds"] == 1

    def test_sweep_takes_run_options(self) -> None:
        cache = api.SweepCache()
        outcome = api.sweep(
            [make_problem()],
            "mrm-uniformization",
            options=api.RunOptions(max_workers=1, cache=cache),
        )
        assert isinstance(outcome, api.SweepResult)
        assert len(cache) == 1

    def test_sweep_rejects_legacy_kwargs(self) -> None:
        with pytest.raises(TypeError):
            api.sweep([make_problem()], "mrm-uniformization", max_workers=1)

    def test_serve(self) -> None:
        service = api.serve(max_entries=4)
        assert isinstance(service, api.LifetimeService)
        assert service.store.max_entries == 4
        response = service.query(WORKLOAD, BATTERY, TIMES, delta=2.0, epsilon=1e-6)
        assert isinstance(response, api.ServiceResponse)
        assert response.served_from == "solve"

    def test_serve_honours_run_options_cache(self, tmp_path) -> None:
        service = api.serve(options=api.RunOptions(cache_dir=tmp_path))
        assert service.store.directory == str(tmp_path)
