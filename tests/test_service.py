"""Tests of the lifetime-query service (``repro.service``).

Request coalescing (N concurrent identical queries -> exactly one solve,
asserted through the ``repro.obs`` solve counters; distinct-fingerprint
queries never share results), the fingerprint-keyed result store with
LRU eviction and per-window resettable counters, the warm-workspace
reuse across requests, schema-validated response diagnostics, the
``RunOptions`` consolidation with its deprecation shim, and the
JSONL / HTTP fronts of ``tools/repro_serve.py``.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.battery.parameters import KiBaMParameters
from repro.checking.fingerprints import audit_fingerprint_registry
from repro.engine import (
    ExecutionPolicy,
    RunOptions,
    SweepCache,
    SweepSpec,
    UnknownSolverError,
    run_sweep,
    scenario_fingerprint,
)
from repro.engine.diagnostics import validate_diagnostics
from repro.service import LifetimeQuery, LifetimeService
from repro.workload.base import WorkloadModel

TIMES = np.linspace(0.0, 300.0, 16)

WORKLOAD = WorkloadModel(
    state_names=("busy", "idle"),
    generator=np.array([[-0.02, 0.02], [0.02, -0.02]]),
    currents=np.array([1.0, 0.05]),
    initial_distribution=np.array([1.0, 0.0]),
)

BATTERY = KiBaMParameters(capacity=60.0, c=0.625, k=1e-3)


def make_query(**overrides) -> LifetimeQuery:
    from repro.engine.problem import LifetimeProblem

    problem_kwargs = dict(
        workload=WORKLOAD, battery=BATTERY, times=TIMES, delta=2.0, epsilon=1e-6
    )
    method = overrides.pop("method", "auto")
    label = overrides.pop("label", None)
    problem_kwargs.update(overrides)
    return LifetimeQuery(
        problem=LifetimeProblem(**problem_kwargs), method=method, label=label
    )


def total_solves(counters: dict[str, int]) -> int:
    return sum(value for name, value in counters.items() if name.startswith("solves."))


class TestLifetimeQuery:
    def test_auto_resolves_to_concrete_method(self) -> None:
        query = make_query()
        assert query.method == "auto"
        assert query.concrete_method() in ("analytic", "mrm-uniformization", "monte-carlo")

    def test_fingerprint_matches_sweep_fingerprint(self) -> None:
        query = make_query()
        assert query.fingerprint() == scenario_fingerprint(
            query.problem, query.concrete_method()
        )

    def test_label_is_fingerprint_exempt(self) -> None:
        assert make_query(label="a").fingerprint() == make_query(label="b").fingerprint()

    def test_auto_and_explicit_concrete_method_coalesce(self) -> None:
        query = make_query()
        explicit = make_query(method=query.concrete_method())
        assert query.fingerprint() == explicit.fingerprint()

    def test_empty_method_rejected(self) -> None:
        with pytest.raises(ValueError, match="non-empty"):
            make_query(method="")

    def test_registered_in_fingerprint_audit(self) -> None:
        audit_fingerprint_registry()

    def test_from_mapping_round_trip(self) -> None:
        payload = {
            "workload": {
                "state_names": ["busy", "idle"],
                "generator": [[-0.02, 0.02], [0.02, -0.02]],
                "currents": [1.0, 0.05],
                "initial_distribution": [1.0, 0.0],
            },
            "battery": {"capacity": 60.0, "c": 0.625, "k": 1e-3},
            "times": {"start": 0.0, "stop": 300.0, "num": 16},
            "delta": 2.0,
            "epsilon": 1e-6,
            "label": "wire",
        }
        query = LifetimeQuery.from_mapping(payload)
        assert query.label == "wire"
        assert query.fingerprint() == make_query().fingerprint()
        # The label must ride on the query only: a problem-level label
        # would be baked into the stored result and leak the first
        # requester's label to every later cache hit of the fingerprint.
        assert query.problem.label is None

    def test_label_does_not_leak_through_the_store(self) -> None:
        service = LifetimeService()
        labelled = make_query(label="first-requester")
        plain = make_query()
        assert service.submit(labelled).result.label == "first-requester"
        repeat = service.submit(plain)
        assert repeat.served_from == "cache"
        assert repeat.result.label != "first-requester"


class TestCoalescing:
    def test_concurrent_identical_queries_single_solve(self) -> None:
        service = LifetimeService()
        query = make_query()
        responses = []
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            responses.append(service.submit(query))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        with obs.override_metrics() as registry:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            counters = registry.snapshot()["counters"]

        assert total_solves(counters) == 1
        served = sorted(response.served_from for response in responses)
        # Exactly one request ran the solver; the stragglers either joined
        # the in-flight solve or (arriving after it finished) hit the store.
        assert served.count("solve") == 1
        assert len(responses) == 8
        reference = responses[0].result.probabilities
        for response in responses:
            np.testing.assert_array_equal(response.result.probabilities, reference)
            assert response.fingerprint == query.fingerprint()
        assert service.stats()["inflight"] == 0

    def test_distinct_fingerprints_never_share_results(self) -> None:
        service = LifetimeService()
        small = make_query()
        large = make_query(battery=KiBaMParameters(capacity=90.0, c=0.625, k=1e-3))
        assert small.fingerprint() != large.fingerprint()
        responses = {}
        barrier = threading.Barrier(2)

        def worker(name: str, query: LifetimeQuery) -> None:
            barrier.wait()
            responses[name] = service.submit(query)

        threads = [
            threading.Thread(target=worker, args=("small", small)),
            threading.Thread(target=worker, args=("large", large)),
        ]
        with obs.override_metrics() as registry:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            counters = registry.snapshot()["counters"]

        assert total_solves(counters) == 2
        assert responses["small"].fingerprint != responses["large"].fingerprint
        assert not np.array_equal(
            responses["small"].result.probabilities,
            responses["large"].result.probabilities,
        )
        # A bigger battery survives longer: the curves genuinely differ.
        assert responses["large"].result.probabilities[-1] < (
            responses["small"].result.probabilities[-1]
        )

    def test_failed_solve_propagates_and_clears_inflight(self) -> None:
        service = LifetimeService()
        with pytest.raises(UnknownSolverError):
            service.submit(make_query(method="carrier-pigeon"))
        assert service.stats()["inflight"] == 0
        # The service stays usable after a failed query.
        assert service.submit(make_query()).served_from == "solve"


class TestServing:
    def test_repeat_query_served_from_store(self) -> None:
        service = LifetimeService()
        first = service.query(WORKLOAD, BATTERY, TIMES, delta=2.0, epsilon=1e-6)
        second = service.query(WORKLOAD, BATTERY, TIMES, delta=2.0, epsilon=1e-6)
        assert first.served_from == "solve"
        assert second.served_from == "cache"
        assert second.query_id == first.query_id + 1
        np.testing.assert_array_equal(
            first.result.probabilities, second.result.probabilities
        )

    def test_response_diagnostics_schema_valid(self) -> None:
        service = LifetimeService()
        response = service.submit(make_query())
        validate_diagnostics(response.diagnostics)
        assert response.diagnostics["served_from"] == "solve"
        assert response.diagnostics["query_fingerprint"] == response.fingerprint
        assert response.diagnostics["query_id"] == response.query_id
        assert response.diagnostics["service_latency_seconds"] == pytest.approx(
            response.latency_seconds
        )
        # Solver telemetry is preserved underneath the service keys.
        assert response.diagnostics["wall_seconds"] >= 0.0

    def test_query_accepts_ready_problem(self) -> None:
        service = LifetimeService()
        query = make_query()
        response = service.query(query.problem)
        assert response.served_from == "solve"
        with pytest.raises(TypeError, match="not both"):
            service.query(query.problem, BATTERY)

    def test_label_stamped_on_response(self) -> None:
        service = LifetimeService()
        response = service.submit(make_query(label="request-7"))
        assert response.result.label == "request-7"
        # ... without fragmenting the store: a differently-labelled repeat hits.
        assert service.submit(make_query(label="request-8")).served_from == "cache"

    def test_workspace_stays_warm_across_distinct_queries(self) -> None:
        service = LifetimeService()
        other_times = np.linspace(0.0, 600.0, 12)
        first = service.query(WORKLOAD, BATTERY, TIMES, delta=2.0, epsilon=1e-6)
        second = service.query(WORKLOAD, BATTERY, other_times, delta=2.0, epsilon=1e-6)
        assert first.fingerprint != second.fingerprint
        assert second.served_from == "solve"
        workspace = service.stats()["workspace"]
        # Same chain, different time grid: the discretised chain is reused.
        assert workspace["chain_builds"] == 1
        assert workspace["chain_build_hits"] >= 1

    def test_shared_store_with_sweeps(self, tmp_path) -> None:
        """A sweep's disk cache answers the service (and vice versa)."""
        store = SweepCache(tmp_path)
        spec = SweepSpec(
            workloads=["simple"],
            batteries=[BATTERY],
            times=np.linspace(10.0, 400.0, 8),
            methods=["mrm-uniformization"],
        )
        run_sweep(spec, options=RunOptions(max_workers=1, cache=store))
        service = LifetimeService(options=RunOptions(cache=store))
        problems, methods = spec.scenarios()
        response = service.submit(LifetimeQuery(problem=problems[0], method=methods[0]))
        assert response.served_from == "cache"


class TestWindowStats:
    def test_reset_window_returns_snapshot_and_zeroes_counters(self) -> None:
        service = LifetimeService()
        service.submit(make_query())
        service.submit(make_query())
        closed = service.reset_window()
        assert closed["served"] == {"solve": 1, "cache": 1, "coalesced": 0}
        assert closed["store"]["hits"] == 1
        assert closed["store"]["misses"] == 1
        fresh = service.stats()
        assert fresh["served"] == {"solve": 0, "cache": 0, "coalesced": 0}
        assert fresh["store"]["hits"] == 0
        assert fresh["store"]["misses"] == 0
        # State survives the window boundary: entries stay, queries keep counting.
        assert fresh["store"]["entries"] == 1
        assert fresh["queries"] == 2
        assert service.submit(make_query()).served_from == "cache"

    def test_cache_reset_stats_is_window_scoped(self, tmp_path) -> None:
        cache = SweepCache(tmp_path)
        assert cache.get("missing") is None
        snapshot = cache.reset_stats()
        assert snapshot["misses"] == 1
        after = cache.stats()
        assert after["misses"] == 0
        assert after["hits"] == 0


class TestStoreEviction:
    def _result(self, tag: str):
        from repro.analysis.distribution import LifetimeDistribution
        from repro.engine.result import LifetimeResult

        return LifetimeResult(
            distribution=LifetimeDistribution(
                times=np.array([1.0, 2.0]), probabilities=np.array([0.0, 1.0]), label=tag
            ),
            method="analytic",
        )

    def test_lru_eviction_bounds_memory(self) -> None:
        cache = SweepCache(max_entries=2)
        cache.put("a", self._result("a"))
        cache.put("b", self._result("b"))
        cache.put("c", self._result("c"))
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert cache.get("a") is None  # oldest entry evicted
        assert cache.get("c") is not None

    def test_get_refreshes_recency(self) -> None:
        cache = SweepCache(max_entries=2)
        cache.put("a", self._result("a"))
        cache.put("b", self._result("b"))
        assert cache.get("a") is not None  # refresh "a"
        cache.put("c", self._result("c"))
        assert cache.get("b") is None  # "b" was the least recently used
        assert cache.get("a") is not None

    def test_eviction_keeps_disk_entries(self, tmp_path) -> None:
        cache = SweepCache(tmp_path, max_entries=1)
        cache.put("a", self._result("a"))
        cache.put("b", self._result("b"))
        assert len(cache) == 1
        assert cache.stats()["disk_entries"] == 2
        # The evicted entry degrades to a disk re-load, not a re-solve.
        assert cache.get("a") is not None
        assert cache.stats()["disk_hits"] == 1

    def test_max_entries_validation(self) -> None:
        with pytest.raises(ValueError, match="max_entries"):
            SweepCache(max_entries=0)


class TestRunOptions:
    def test_validation(self) -> None:
        with pytest.raises(ValueError, match="max_workers"):
            RunOptions(max_workers=0)
        with pytest.raises(ValueError, match="failure_mode"):
            RunOptions(failure_mode="shrug")

    def test_merged_overrides_only_non_none(self) -> None:
        base = RunOptions(max_workers=2, failure_mode="degrade")
        merged = base.merged(max_workers=4, executor=None)
        assert merged.max_workers == 4
        assert merged.failure_mode == "degrade"
        assert base.merged() is base

    def test_resolve_cache_prefers_explicit(self, tmp_path) -> None:
        cache = SweepCache()
        assert RunOptions(cache=cache).resolve_cache() is cache
        built = RunOptions(cache_dir=tmp_path).resolve_cache()
        assert isinstance(built, SweepCache)
        assert built.directory == str(tmp_path)
        assert RunOptions().resolve_cache() is None

    def test_run_sweep_options_spelling_emits_no_warning(self) -> None:
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            outcome = run_sweep(
                [make_query().problem],
                "mrm-uniformization",
                options=RunOptions(max_workers=1),
            )
        assert len(outcome.results) == 1

    def test_run_sweep_legacy_kwargs_deprecated_with_migration(self) -> None:
        with pytest.warns(DeprecationWarning, match=r"options=RunOptions\(max_workers=\.\.\.\)"):
            run_sweep([make_query().problem], "mrm-uniformization", max_workers=1)

    def test_run_sweep_legacy_kwargs_still_work(self) -> None:
        cache = SweepCache()
        with pytest.warns(DeprecationWarning):
            run_sweep(
                [make_query().problem], "mrm-uniformization", max_workers=1, cache=cache
            )
        assert len(cache) == 1

    def test_legacy_kwargs_override_options(self) -> None:
        policy = ExecutionPolicy(max_retries=0)
        with pytest.warns(DeprecationWarning):
            outcome = run_sweep(
                [make_query().problem],
                "mrm-uniformization",
                options=RunOptions(max_workers=2),
                max_workers=1,
                execution=policy,
            )
        assert outcome.diagnostics["n_workers"] == 1


class TestServeFronts:
    QUERY_DOCUMENT = {
        "workload": {
            "state_names": ["busy", "idle"],
            "generator": [[-0.02, 0.02], [0.02, -0.02]],
            "currents": [1.0, 0.05],
            "initial_distribution": [1.0, 0.0],
        },
        "battery": {"capacity": 60.0, "c": 0.625, "k": 1e-3},
        "times": {"start": 0.0, "stop": 300.0, "num": 16},
        "delta": 2.0,
        "epsilon": 1e-6,
        "label": "wire",
    }

    def test_jsonl_front(self) -> None:
        from tools.repro_serve import run_jsonl

        service = LifetimeService()
        lines = [json.dumps(self.QUERY_DOCUMENT)] * 2 + ["{broken"]
        sink = io.StringIO()
        failures = run_jsonl(service, io.StringIO("\n".join(lines) + "\n"), sink)
        documents = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert failures == 1
        assert [doc.get("served_from") for doc in documents] == ["solve", "cache", None]
        assert "error" in documents[2]
        assert documents[0]["label"] == "wire"
        assert documents[0]["diagnostics"]["served_from"] == "solve"
        assert len(documents[0]["probabilities"]) == 16

    def test_cli_main_reads_stdin_with_dash(self, monkeypatch, capsys) -> None:
        from tools.repro_serve import main

        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps(self.QUERY_DOCUMENT) + "\n")
        )
        assert main(["-"]) == 0
        document = json.loads(capsys.readouterr().out.splitlines()[0])
        assert document["served_from"] == "solve"
        assert document["label"] == "wire"

    def test_http_front(self) -> None:
        from http.server import ThreadingHTTPServer

        from tools.repro_serve import _make_handler

        service = LifetimeService()
        server = ThreadingHTTPServer(("127.0.0.1", 0), _make_handler(service))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            body = json.dumps(self.QUERY_DOCUMENT).encode()
            for expected in ("solve", "cache"):
                request = urllib.request.Request(
                    base + "/query", data=body, headers={"Content-Type": "application/json"}
                )
                with urllib.request.urlopen(request) as reply:
                    document = json.loads(reply.read())
                assert document["served_from"] == expected

            with urllib.request.urlopen(base + "/healthz") as reply:
                assert json.loads(reply.read()) == {"ok": True}

            with urllib.request.urlopen(base + "/stats") as reply:
                stats = json.loads(reply.read())
            assert stats["served"] == {"solve": 1, "cache": 1, "coalesced": 0}

            reset = urllib.request.Request(base + "/stats/reset", data=b"", method="POST")
            with urllib.request.urlopen(reset) as reply:
                closed = json.loads(reply.read())
            assert closed["served"]["solve"] == 1
            with urllib.request.urlopen(base + "/stats") as reply:
                assert json.loads(reply.read())["served"]["solve"] == 0

            bad = urllib.request.Request(
                base + "/query", data=b"{broken", headers={"Content-Type": "application/json"}
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad)
            assert excinfo.value.code == 400
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
