"""Tests of the fault-tolerant sweep execution layer.

The deterministic ``REPRO_FAULTS`` injectors (:mod:`repro.engine.faults`)
drive the retry, isolation, degradation, timeout, pool-rebuild and
kill-resume paths of :mod:`repro.engine.executor` end-to-end through
:func:`run_sweep`; the retry driver itself (:func:`execute_chunks`) is
additionally unit-tested against a stub workload so its accounting is
checked without solving anything.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.battery.parameters import KiBaMParameters
from repro.engine import (
    ExecutionPolicy,
    InjectedFaultError,
    RunOptions,
    SweepCache,
    SweepScenarioError,
    SweepSpec,
    available_executors,
    override_faults,
    parse_faults,
    register_executor,
    run_sweep,
    scenario_fingerprint,
)
from repro.engine.diagnostics import validate_diagnostics
from repro.engine.executor import (
    ChunkTask,
    SerialChunkExecutor,
    execute_chunks,
    get_executor_factory,
)
from repro.engine.faults import ENV_VAR, FaultDirective, FaultPlan, faults_spec
from repro.engine.sweep import FAILED_METHOD

TIMES = np.linspace(10.0, 400.0, 12)

#: Three single-battery scenarios with distinct chains (distinct capacities)
#: so one serial chunk carries three chain-sharing groups -- the smallest
#: sweep on which chunk splitting isolates a poison scenario.
SPEC = SweepSpec(
    workloads=["simple"],
    batteries=[KiBaMParameters(capacity=60.0 + 20.0 * i, c=0.625, k=1e-3) for i in range(3)],
    times=TIMES,
    methods=["mrm-uniformization"],
)

#: Default test policy: no backoff sleeps, otherwise the shipped defaults.
FAST = ExecutionPolicy(backoff_base=0.0)
DEGRADE = ExecutionPolicy(backoff_base=0.0, failure_mode="degrade")


@pytest.fixture(scope="module")
def clean() -> "object":
    """The uninterrupted sweep every faulted run must reproduce exactly."""
    return run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST))


def assert_curves_match(result, reference, indices=None) -> None:
    positions = range(len(reference.results)) if indices is None else indices
    for index in positions:
        np.testing.assert_array_equal(
            result.results[index].probabilities,
            reference.results[index].probabilities,
        )


# ----------------------------------------------------------------------
# ExecutionPolicy
# ----------------------------------------------------------------------


class TestExecutionPolicy:
    def test_defaults_are_strict_with_retries(self) -> None:
        policy = ExecutionPolicy()
        assert policy.max_retries == 2
        assert policy.failure_mode == "strict"
        assert policy.chunk_timeout is None

    def test_backoff_is_capped_exponential(self) -> None:
        policy = ExecutionPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(5) == pytest.approx(0.3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"chunk_timeout": 0.0},
            {"backoff_factor": 0.5},
            {"backoff_base": -1.0},
            {"failure_mode": "explode"},
        ],
    )
    def test_invalid_knobs_are_rejected(self, kwargs) -> None:
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)


# ----------------------------------------------------------------------
# fault harness
# ----------------------------------------------------------------------


class TestFaultHarness:
    def test_parse_multiple_directives(self) -> None:
        directives = parse_faults("crash:rate=0.25:seed=7;hang:seconds=2:match=bursty")
        assert [d.kind for d in directives] == ["crash", "hang"]
        assert directives[0].rate == 0.25 and directives[0].seed == 7
        assert directives[1].seconds == 2.0 and directives[1].match == "bursty"

    def test_empty_spec_is_inert(self) -> None:
        assert parse_faults("") == ()
        assert not FaultPlan.from_spec("").enabled

    @pytest.mark.parametrize("spec", ["explode", "crash:rate", "crash:color=red"])
    def test_nonsense_specs_raise(self, spec) -> None:
        with pytest.raises(ValueError):
            parse_faults(spec)

    def test_chance_is_deterministic_and_seeded(self) -> None:
        directive = FaultDirective(kind="crash", seed=3)
        draw = directive.chance("scenario-a")
        assert 0.0 <= draw < 1.0
        assert directive.chance("scenario-a") == draw
        assert FaultDirective(kind="crash", seed=4).chance("scenario-a") != draw

    def test_fires_respects_match_rate_and_attempt(self) -> None:
        always = FaultDirective(kind="crash", match="C=80", max_attempt=1)
        assert always.fires("simple | C=80", attempt=0)
        assert not always.fires("simple | C=60", attempt=0)
        assert not always.fires("simple | C=80", attempt=1)
        assert not FaultDirective(kind="crash", rate=0.0).fires("anything", attempt=0)

    def test_override_wins_over_environment(self, monkeypatch) -> None:
        monkeypatch.setenv(ENV_VAR, "crash:rate=0.5")
        assert faults_spec() == "crash:rate=0.5"
        with override_faults("corrupt"):
            assert faults_spec() == "corrupt"
        assert faults_spec() == "crash:rate=0.5"

    def test_override_parses_eagerly(self) -> None:
        with pytest.raises(ValueError, match="unknown fault kind"):
            with override_faults("meltdown"):
                pass  # pragma: no cover - the with statement must raise

    def test_crash_injector_raises(self) -> None:
        plan = FaultPlan.from_spec("crash")
        with pytest.raises(InjectedFaultError, match="injected crash"):
            plan.before_scenario("any", attempt=0)


# ----------------------------------------------------------------------
# ChunkTask splitting and the retry driver (stubbed work, no solving)
# ----------------------------------------------------------------------


def _stub_task(groups) -> ChunkTask:
    return ChunkTask(task_id=0, groups=tuple(groups))


class TestChunkTask:
    GROUPS = (
        ((0, 1), "mrm-uniformization", ("p0", "p1")),
        ((2,), "mrm-uniformization", ("p2",)),
    )

    def test_indices_and_labels(self) -> None:
        task = _stub_task(self.GROUPS)
        assert task.indices == (0, 1, 2)
        assert task.n_scenarios == 3
        assert task.labels() == ("scenario #0", "scenario #1", "scenario #2")

    def test_split_multigroup_task_into_groups(self) -> None:
        pieces = _stub_task(self.GROUPS).split_groups()
        assert [piece[0][0] for piece in pieces] == [(0, 1), (2,)]

    def test_split_single_group_into_scenarios(self) -> None:
        pieces = _stub_task(self.GROUPS[:1]).split_groups()
        assert [piece[0][0] for piece in pieces] == [(0,), (1,)]

    def test_single_scenario_task_does_not_split(self) -> None:
        task = _stub_task(self.GROUPS[1:])
        assert task.split_groups() == [task.groups]


class TestExecuteChunks:
    @staticmethod
    def _flaky(fail_until: int):
        def work(task: ChunkTask):
            if task.attempt < fail_until:
                raise RuntimeError(f"boom at attempt {task.attempt}")
            return [(list(indices), [f"ok-{index}" for index in indices], False)
                    for indices, _, _ in task.groups]

        return work

    def test_retry_splits_and_completes(self) -> None:
        solved: dict[int, str] = {}

        def on_success(task, payload) -> None:
            for indices, values, _ in payload:
                solved.update(zip(indices, values))

        stats = execute_chunks(
            [_stub_task(TestChunkTask.GROUPS)],
            SerialChunkExecutor(self._flaky(fail_until=1)),
            ExecutionPolicy(backoff_base=0.0),
            on_success=on_success,
            on_failure=lambda task, error, timed_out: pytest.fail(f"unexpected failure: {error}"),
        )
        assert solved == {0: "ok-0", 1: "ok-1", 2: "ok-2"}
        assert stats.n_retries == 1
        assert stats.n_splits == 1
        assert stats.n_failed_tasks == 0

    def test_exhausted_failure_reaches_on_failure(self) -> None:
        failed: list[tuple[int, ...]] = []
        stats = execute_chunks(
            [_stub_task(TestChunkTask.GROUPS)],
            SerialChunkExecutor(self._flaky(fail_until=99)),
            ExecutionPolicy(max_retries=1, backoff_base=0.0),
            on_success=lambda task, payload: pytest.fail("nothing should succeed"),
            on_failure=lambda task, error, timed_out: failed.append(task.indices),
        )
        # The first failure split the chunk; both pieces then exhausted.
        assert sorted(failed) == [(0, 1), (2,)]
        assert stats.n_failed_tasks == 2

    def test_split_can_be_disabled(self) -> None:
        failed: list[tuple[int, ...]] = []
        execute_chunks(
            [_stub_task(TestChunkTask.GROUPS)],
            SerialChunkExecutor(self._flaky(fail_until=99)),
            ExecutionPolicy(max_retries=1, backoff_base=0.0, split_on_retry=False),
            on_success=lambda task, payload: None,
            on_failure=lambda task, error, timed_out: failed.append(task.indices),
        )
        assert failed == [(0, 1, 2)]

    def test_strict_abort_propagates(self) -> None:
        def on_failure(task, error, timed_out) -> None:
            raise SweepScenarioError("abort", task.labels())

        with pytest.raises(SweepScenarioError, match="abort"):
            execute_chunks(
                [_stub_task(TestChunkTask.GROUPS)],
                SerialChunkExecutor(self._flaky(fail_until=99)),
                ExecutionPolicy(max_retries=0, backoff_base=0.0),
                on_success=lambda task, payload: None,
                on_failure=on_failure,
            )


# ----------------------------------------------------------------------
# executor registry
# ----------------------------------------------------------------------


class TestExecutorRegistry:
    def test_builtins_are_registered(self) -> None:
        assert {"serial", "process"} <= set(available_executors())

    def test_unknown_name_raises(self) -> None:
        with pytest.raises(ValueError, match="unknown executor"):
            get_executor_factory("carrier-pigeon")

    def test_duplicate_registration_requires_replace(self) -> None:
        with pytest.raises(ValueError, match="already registered"):
            register_executor("serial", SerialChunkExecutor)
        register_executor("serial", SerialChunkExecutor, replace=True)

    def test_run_sweep_rejects_unknown_executor(self) -> None:
        with pytest.raises(ValueError, match="unknown executor"):
            run_sweep(SPEC, options=RunOptions(max_workers=1, executor="carrier-pigeon"))


# ----------------------------------------------------------------------
# retry / isolation / degradation through run_sweep (serial executor)
# ----------------------------------------------------------------------


class TestSweepFaultTolerance:
    def test_crash_once_is_retried_transparently(self, clean) -> None:
        with override_faults("crash:max_attempt=1"):
            result = run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST))
        assert result.diagnostics["n_retries"] >= 1
        assert result.diagnostics["n_failed"] == 0
        assert_curves_match(result, clean)

    def test_strict_failure_names_exactly_the_poison_scenario(self) -> None:
        with override_faults("crash:match=C=80"):
            with pytest.raises(SweepScenarioError) as excinfo:
                run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST))
        assert excinfo.value.labels == ("simple | C=80, c=0.625, k=0.001",)
        assert "C=80" in str(excinfo.value)

    def test_degrade_isolates_the_poison_scenario(self, clean) -> None:
        with override_faults("crash:match=C=80"):
            result = run_sweep(SPEC, options=RunOptions(max_workers=1, execution=DEGRADE))
        labels = [problem.label for problem in SPEC.scenarios()[0]]
        poisoned = labels.index("simple | C=80, c=0.625, k=0.001")
        assert result.failed_indices == [poisoned]
        assert result.diagnostics["n_failed"] == 1
        # The chunk-mates survived the poison scenario bit-identically.
        assert_curves_match(result, clean, [i for i in range(3) if i != poisoned])

    def test_degraded_slot_carries_a_schema_valid_failure_record(self) -> None:
        with override_faults("crash:match=C=80"):
            result = run_sweep(SPEC, options=RunOptions(max_workers=1, execution=DEGRADE))
        slot = result.results[result.failed_indices[0]]
        assert slot.method == FAILED_METHOD
        assert np.all(np.isnan(slot.probabilities))
        validate_diagnostics(slot.diagnostics)
        record = slot.diagnostics["failure"]
        assert record["label"] == "simple | C=80, c=0.625, k=0.001"
        assert record["error_type"] == "SweepScenarioError"
        assert record["attempts"] == FAST.max_retries + 1
        assert record["timed_out"] is False
        assert result.diagnostics["failures"] == [record]

    def test_corrupt_result_is_detected_and_retried(self, clean) -> None:
        with override_faults("corrupt:max_attempt=1"):
            result = run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST))
        assert result.diagnostics["n_retries"] >= 1
        assert_curves_match(result, clean)

    def test_persistent_corruption_degrades(self) -> None:
        with override_faults("corrupt:match=C=80"):
            result = run_sweep(SPEC, options=RunOptions(max_workers=1, execution=DEGRADE))
        record = result.results[result.failed_indices[0]].diagnostics["failure"]
        assert record["error_type"] == "CorruptResultError"

    def test_progress_events_reach_the_callback(self) -> None:
        events = []
        result = run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST, progress=events.append))
        assert events[0].done == 0 and events[0].total == 3
        assert events[-1].done == 3 and events[-1].failed == 0
        assert events[-1].eta_seconds == 0.0
        assert result.diagnostics["n_solved"] == 3


# ----------------------------------------------------------------------
# timeout, pool rebuild and parity (process executor)
# ----------------------------------------------------------------------


class TestProcessExecutorRecovery:
    def test_parallel_results_match_serial(self, clean) -> None:
        result = run_sweep(SPEC, options=RunOptions(max_workers=2, execution=FAST))
        assert result.diagnostics["executor"] == "process"
        assert result.diagnostics["parallel"] is True
        assert_curves_match(result, clean)

    def test_hung_chunk_is_timed_out_and_retried(self, clean) -> None:
        policy = ExecutionPolicy(backoff_base=0.0, chunk_timeout=2.0)
        with override_faults("hang:seconds=60:max_attempt=1:match=C=60"):
            result = run_sweep(SPEC, options=RunOptions(max_workers=2, execution=policy, executor="process"))
        assert result.diagnostics["n_timeouts"] >= 1
        assert result.diagnostics["n_pool_rebuilds"] >= 1
        assert result.diagnostics["n_failed"] == 0
        assert_curves_match(result, clean)

    def test_killed_worker_rebuilds_the_pool(self, clean) -> None:
        with override_faults("kill:max_attempt=1:match=C=80"):
            result = run_sweep(SPEC, options=RunOptions(max_workers=2, execution=FAST, executor="process"))
        assert result.diagnostics["n_pool_rebuilds"] >= 1
        assert result.diagnostics["n_retries"] >= 1
        assert result.diagnostics["n_failed"] == 0
        assert_curves_match(result, clean)


# ----------------------------------------------------------------------
# checkpoint streaming and kill-resume
# ----------------------------------------------------------------------


class TestCheckpointResume:
    def test_workers_stream_checkpoints_and_a_fresh_run_resumes(self, tmp_path, clean) -> None:
        first = run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST, cache_dir=tmp_path))
        assert first.diagnostics["checkpointed"] == 3
        assert first.diagnostics["cache"]["disk_entries"] == 3
        # A brand-new process (fresh cache instance) resumes from disk.
        resumed = run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST, cache_dir=tmp_path))
        assert resumed.diagnostics["resumed_hits"] == 3
        assert resumed.diagnostics["n_solved"] == 0
        assert resumed.diagnostics["cache_hits"] == 3
        assert_curves_match(resumed, clean)
        assert all(result.diagnostics["cache_hit"] for result in resumed.results)

    def test_sigkilled_sweep_resumes_without_resolving(self, tmp_path, clean) -> None:
        """End-to-end kill-resume: SIGKILL a sweep mid-run, resume, re-solve nothing."""
        script = textwrap.dedent(
            """
            import sys

            import numpy as np

            from repro.battery.parameters import KiBaMParameters
            from repro.engine import ExecutionPolicy, RunOptions, SweepSpec, run_sweep

            spec = SweepSpec(
                workloads=["simple"],
                batteries=[
                    KiBaMParameters(capacity=60.0 + 20.0 * i, c=0.625, k=1e-3)
                    for i in range(3)
                ],
                times=np.linspace(10.0, 400.0, 12),
                methods=["mrm-uniformization"],
            )
            run_sweep(spec, options=RunOptions(max_workers=1, execution=ExecutionPolicy(backoff_base=0.0), cache_dir=sys.argv[1]))
            """
        )
        env = dict(os.environ)
        # Equal-cost groups run in scenario order (C=60, C=80, C=100); the
        # kill injector SIGKILLs the (driver) process right before the last
        # group, after the earlier groups were durably checkpointed.
        env[ENV_VAR] = "kill:match=C=100"
        child = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert child.returncode == -signal.SIGKILL, child.stderr
        survived = sorted(tmp_path.glob("*.pkl"))
        assert len(survived) == 2  # every group before the kill is on disk

        resumed = run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST, cache_dir=tmp_path))
        # Zero completed scenarios are re-solved: the two checkpointed ones
        # come back from disk, only the killed scenario is solved.
        assert resumed.diagnostics["resumed_hits"] == 2
        assert resumed.diagnostics["n_solved"] == 1
        assert resumed.diagnostics["n_failed"] == 0
        assert_curves_match(resumed, clean)

    def test_checkpoints_are_valid_cache_envelopes(self, tmp_path) -> None:
        run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST, cache_dir=tmp_path))
        for path in tmp_path.glob("*.pkl"):
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
            assert envelope["schema"] == 1
            assert envelope["fingerprint"] == path.stem
            assert "repro_version" in envelope


# ----------------------------------------------------------------------
# execution knobs are fingerprint-inert
# ----------------------------------------------------------------------


class TestFingerprintInvariance:
    def test_execution_policy_does_not_change_fingerprints(self) -> None:
        from dataclasses import replace

        tweaked = replace(
            SPEC,
            execution=ExecutionPolicy(
                max_retries=9, chunk_timeout=123.0, failure_mode="degrade"
            ),
        )
        base_problems, base_methods = SPEC.scenarios()
        tweaked_problems, tweaked_methods = tweaked.scenarios()
        for base, tweak, method in zip(base_problems, tweaked_problems, base_methods):
            assert scenario_fingerprint(base, method) == scenario_fingerprint(tweak, method)
        assert base_methods == tweaked_methods

    def test_cache_written_under_one_policy_serves_another(self, tmp_path) -> None:
        cache = SweepCache(tmp_path)
        run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST, cache=cache))
        second = run_sweep(SPEC, options=RunOptions(max_workers=1, execution=ExecutionPolicy(max_retries=0, chunk_timeout=60.0), failure_mode="degrade", cache=cache))
        assert second.diagnostics["cache_hits"] == 3
        assert second.diagnostics["n_solved"] == 0
