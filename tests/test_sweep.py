"""Tests for the parallel scenario-sweep subsystem (:mod:`repro.engine.sweep`)."""

import pickle

import numpy as np
import pytest

from repro.battery.parameters import KiBaMParameters
from repro.engine import (
    LifetimeProblem,
    RunOptions,
    ScenarioBatch,
    SweepCache,
    SweepScenarioError,
    SweepSpec,
    run_sweep,
    scenario_fingerprint,
)
from repro.engine.sweep import CACHE_SCHEMA_VERSION, _partition, default_worker_count
from repro.workload.onoff import onoff_workload

TIMES = np.linspace(2000.0, 6000.0, 9)


def small_battery(capacity: float = 2400.0) -> KiBaMParameters:
    return KiBaMParameters(capacity=capacity, c=1.0, k=0.0)


@pytest.fixture(scope="module")
def spec() -> SweepSpec:
    return SweepSpec(
        workloads=[onoff_workload(frequency=f, erlang_k=1) for f in (0.5, 1.0)],
        batteries=[small_battery(2000.0), small_battery(2400.0)],
        times=TIMES,
        deltas=[50.0],
        methods=["mrm-uniformization"],
    )


class TestSweepSpec:
    def test_cross_product_size_and_order(self, spec):
        problems, methods = spec.scenarios()
        assert len(problems) == len(spec) == 4
        assert methods == ["mrm-uniformization"] * 4
        # Workload-major order: the first two scenarios share workload 0.
        assert problems[0].workload is problems[1].workload
        assert problems[0].battery.capacity == 2000.0
        assert problems[1].battery.capacity == 2400.0

    def test_labels_name_the_axes(self, spec):
        problems, _ = spec.scenarios()
        assert "C=2000" in problems[0].label
        assert "Delta=50" in problems[0].label
        assert "f = 0.5" in problems[0].label

    def test_per_scenario_child_seeds(self, spec):
        problems, _ = spec.scenarios()
        seeds = [problem.seed for problem in problems]
        assert len(set(seeds)) == len(seeds)
        # Re-expanding the same spec gives the same seeds.
        again, _ = spec.scenarios()
        assert [problem.seed for problem in again] == seeds

    def test_catalog_names_resolve(self):
        spec = SweepSpec(
            workloads=["simple", "burst"],
            batteries=[small_battery()],
            times=TIMES,
        )
        problems, _ = spec.scenarios()
        assert problems[0].workload.n_states == 3
        assert problems[1].workload.n_states == 5
        assert problems[0].label.startswith("simple")

    def test_method_axis_expands(self):
        spec = SweepSpec(
            workloads=[onoff_workload(frequency=1.0)],
            batteries=[small_battery()],
            times=TIMES,
            methods=["analytic", "monte-carlo"],
        )
        problems, methods = spec.scenarios()
        assert methods == ["analytic", "monte-carlo"]
        assert "analytic" in problems[0].label

    def test_empty_axis_rejected(self):
        spec = SweepSpec(workloads=[], batteries=[small_battery()], times=TIMES)
        with pytest.raises(ValueError):
            spec.scenarios()


class TestFingerprint:
    def test_label_does_not_change_fingerprint(self):
        problem = LifetimeProblem(
            workload=onoff_workload(frequency=1.0),
            battery=small_battery(),
            times=TIMES,
            delta=50.0,
        )
        relabelled = problem.with_label("other name")
        assert scenario_fingerprint(problem, "analytic") == scenario_fingerprint(
            relabelled, "analytic"
        )

    def test_solver_knobs_change_fingerprint(self):
        problem = LifetimeProblem(
            workload=onoff_workload(frequency=1.0),
            battery=small_battery(),
            times=TIMES,
            delta=50.0,
        )
        base = scenario_fingerprint(problem, "mrm-uniformization")
        assert scenario_fingerprint(problem, "monte-carlo") != base
        assert scenario_fingerprint(problem.with_delta(25.0), "mrm-uniformization") != base
        from dataclasses import replace

        assert (
            scenario_fingerprint(replace(problem, epsilon=1e-6), "mrm-uniformization")
            != base
        )

    def test_seed_only_matters_for_stochastic_solvers(self):
        # Deterministic solvers ignore (seed, n_runs, horizon), so a grown
        # SweepSpec -- whose per-position child seeds shift -- still hits
        # the cache for every unchanged deterministic scenario.
        from dataclasses import replace

        problem = LifetimeProblem(
            workload=onoff_workload(frequency=1.0),
            battery=small_battery(),
            times=TIMES,
            delta=50.0,
        )
        reseeded = replace(problem, seed=1, n_runs=77)
        for method in ("analytic", "mrm-uniformization"):
            assert scenario_fingerprint(problem, method) == scenario_fingerprint(
                reseeded, method
            )
        assert scenario_fingerprint(problem, "monte-carlo") != scenario_fingerprint(
            reseeded, "monte-carlo"
        )


class TestRunSweep:
    def test_serial_and_parallel_identical(self, spec):
        serial = run_sweep(spec, options=RunOptions(max_workers=1))
        parallel = run_sweep(spec, options=RunOptions(max_workers=2))
        assert not serial.diagnostics["parallel"]
        assert parallel.diagnostics["parallel"]
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.probabilities, b.probabilities)
            assert a.label == b.label

    def test_results_in_scenario_order(self, spec):
        problems, _ = spec.scenarios()
        outcome = run_sweep(spec, options=RunOptions(max_workers=2))
        assert outcome.labels == [problem.label for problem in problems]
        for problem, result in zip(problems, outcome):
            single = ScenarioBatch([problem]).run("mrm-uniformization")[0]
            assert np.allclose(single.probabilities, result.probabilities, atol=1e-12)

    def test_batch_and_problem_list_inputs(self, spec):
        problems, _ = spec.scenarios()
        from_list = run_sweep(problems, "mrm-uniformization", options=RunOptions(max_workers=1))
        from_batch = run_sweep(ScenarioBatch(problems), "mrm-uniformization", options=RunOptions(max_workers=1))
        for a, b in zip(from_list, from_batch):
            assert np.array_equal(a.probabilities, b.probabilities)

    def test_monte_carlo_independent_of_worker_count(self):
        spec = SweepSpec(
            workloads=[onoff_workload(frequency=0.05)],
            batteries=[small_battery(120.0), small_battery(240.0)],
            times=np.linspace(100.0, 1200.0, 12),
            methods=["monte-carlo"],
            n_runs=300,
        )
        one = run_sweep(spec, options=RunOptions(max_workers=1))
        two = run_sweep(spec, options=RunOptions(max_workers=2))
        for a, b in zip(one, two):
            assert np.array_equal(a.probabilities, b.probabilities)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([])

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_worker_failures_name_the_scenario(self, max_workers):
        """Regression: a failing scenario surfaces with its label attached.

        The analytic solver rejects three-current workloads, so forcing it
        on a sweep that contains one makes exactly that scenario blow up
        inside the worker; the re-raised error must identify it instead of
        surfacing as a bare solver exception.
        """
        from repro.workload.simple import simple_workload

        good = LifetimeProblem(
            workload=onoff_workload(frequency=0.5, erlang_k=1),
            battery=small_battery(2000.0),
            times=TIMES,
            label="solvable on/off scenario",
        )
        # The cell-phone workload draws three distinct currents.
        bad = LifetimeProblem(
            workload=simple_workload(),
            battery=small_battery(2000.0),
            times=TIMES,
            label="three-current scenario",
        )
        assert bad.n_current_levels > 2
        with pytest.raises(SweepScenarioError) as caught:
            run_sweep([good, bad], "analytic", options=RunOptions(max_workers=max_workers))
        assert "three-current scenario" in str(caught.value)
        assert caught.value.labels == ("three-current scenario",)
        assert "UnsupportedProblemError" in str(caught.value)

    def test_sweep_diagnostics(self, spec):
        outcome = run_sweep(spec, options=RunOptions(max_workers=2))
        diagnostics = outcome.diagnostics
        assert diagnostics["n_scenarios"] == 4
        assert diagnostics["n_solved"] == 4
        assert diagnostics["cache_hits"] == 0
        assert diagnostics["methods"] == ["mrm-uniformization"]
        assert diagnostics["wall_seconds"] > 0
        for result in outcome:
            assert result.diagnostics["cache_hit"] is False


class TestSweepCache:
    def test_rerun_is_served_from_cache(self, spec):
        cache = SweepCache()
        first = run_sweep(spec, options=RunOptions(max_workers=1, cache=cache))
        second = run_sweep(spec, options=RunOptions(max_workers=1, cache=cache))
        assert second.diagnostics["n_solved"] == 0
        assert second.diagnostics["cache_hits"] == len(spec)
        for a, b in zip(first, second):
            assert np.array_equal(a.probabilities, b.probabilities)
            assert a.label == b.label
            assert b.diagnostics["cache_hit"] is True
            # The cache hit must not have mutated the first run's results.
            assert a.diagnostics["cache_hit"] is False

    def test_cache_shared_between_serial_and_parallel(self, spec):
        cache = SweepCache()
        run_sweep(spec, options=RunOptions(max_workers=2, cache=cache))
        again = run_sweep(spec, options=RunOptions(max_workers=1, cache=cache))
        assert again.diagnostics["n_solved"] == 0

    def test_disk_cache_survives_new_instance(self, spec, tmp_path):
        first = run_sweep(spec, options=RunOptions(max_workers=1, cache=SweepCache(tmp_path)))
        fresh = SweepCache(tmp_path)
        second = run_sweep(spec, options=RunOptions(max_workers=1, cache=fresh))
        assert second.diagnostics["n_solved"] == 0
        for a, b in zip(first, second):
            assert np.array_equal(a.probabilities, b.probabilities)

    def test_cache_dir_convenience(self, spec, tmp_path):
        run_sweep(spec, options=RunOptions(max_workers=1, cache_dir=tmp_path))
        second = run_sweep(spec, options=RunOptions(max_workers=1, cache_dir=tmp_path))
        assert second.diagnostics["n_solved"] == 0

    def test_corrupt_disk_entry_is_resolved(self, spec, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(spec, options=RunOptions(max_workers=1, cache=cache))
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        fresh = SweepCache(tmp_path)
        outcome = run_sweep(spec, options=RunOptions(max_workers=1, cache=fresh))
        # Corrupt entries fall back to solving.
        assert outcome.diagnostics["n_solved"] == len(spec)

    def test_hit_is_relabelled_for_new_scenario_label(self):
        problem = LifetimeProblem(
            workload=onoff_workload(frequency=1.0),
            battery=small_battery(),
            times=TIMES,
            delta=50.0,
            label="first name",
        )
        cache = SweepCache()
        run_sweep([problem], "mrm-uniformization", options=RunOptions(max_workers=1, cache=cache))
        renamed = problem.with_label("second name")
        outcome = run_sweep([renamed], "mrm-uniformization", options=RunOptions(max_workers=1, cache=cache))
        assert outcome.diagnostics["cache_hits"] == 1
        assert outcome[0].label == "second name"

    def test_stats(self, spec):
        cache = SweepCache()
        run_sweep(spec, options=RunOptions(max_workers=1, cache=cache))
        stats = cache.stats()
        assert stats["entries"] == len(spec)
        assert stats["misses"] == len(spec)
        assert stats["hits"] == 0
        # A memory-only cache has nothing on disk and nothing quarantined.
        assert stats["disk_entries"] == 0
        assert stats["disk_hits"] == 0
        assert stats["quarantined"] == 0


class TestCacheVersioning:
    @staticmethod
    def _solved(spec, tmp_path) -> SweepCache:
        cache = SweepCache(tmp_path)
        run_sweep(spec, options=RunOptions(max_workers=1, cache=cache))
        return cache

    def test_entries_are_version_stamped_envelopes(self, spec, tmp_path):
        from repro import __version__

        self._solved(spec, tmp_path)
        paths = list(tmp_path.glob("*.pkl"))
        assert len(paths) == len(spec)
        for path in paths:
            envelope = pickle.loads(path.read_bytes())
            assert envelope["schema"] == CACHE_SCHEMA_VERSION
            assert envelope["repro_version"] == __version__
            assert envelope["fingerprint"] == path.stem

    def test_stale_schema_entries_are_quarantined_not_served(self, spec, tmp_path):
        self._solved(spec, tmp_path)
        for path in tmp_path.glob("*.pkl"):
            envelope = pickle.loads(path.read_bytes())
            envelope["schema"] = CACHE_SCHEMA_VERSION + 1
            path.write_bytes(pickle.dumps(envelope))
        fresh = SweepCache(tmp_path)
        outcome = run_sweep(spec, options=RunOptions(max_workers=1, cache=fresh))
        # Nothing stale was served: every scenario was re-solved, and the
        # evidence survives as *.corrupt files next to the fresh entries.
        assert outcome.diagnostics["n_solved"] == len(spec)
        assert fresh.stats()["quarantined"] == len(spec)
        assert len(list(tmp_path.glob("*.corrupt"))) == len(spec)
        assert fresh.stats()["disk_entries"] == len(spec)

    def test_legacy_bare_pickles_are_quarantined(self, spec, tmp_path):
        self._solved(spec, tmp_path)
        # The pre-envelope format persisted the bare result object.
        for path in tmp_path.glob("*.pkl"):
            envelope = pickle.loads(path.read_bytes())
            path.write_bytes(pickle.dumps(envelope["result"]))
        fresh = SweepCache(tmp_path)
        outcome = run_sweep(spec, options=RunOptions(max_workers=1, cache=fresh))
        assert outcome.diagnostics["n_solved"] == len(spec)
        assert fresh.stats()["quarantined"] == len(spec)

    def test_unreadable_entries_are_quarantined(self, spec, tmp_path):
        self._solved(spec, tmp_path)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        fresh = SweepCache(tmp_path)
        run_sweep(spec, options=RunOptions(max_workers=1, cache=fresh))
        assert fresh.stats()["quarantined"] == len(spec)

    def test_stats_report_disk_entries_and_disk_hits(self, spec, tmp_path):
        cache = self._solved(spec, tmp_path)
        assert cache.stats()["disk_entries"] == len(spec)
        assert cache.stats()["disk_hits"] == 0
        fresh = SweepCache(tmp_path)
        run_sweep(spec, options=RunOptions(max_workers=1, cache=fresh))
        stats = fresh.stats()
        assert stats["disk_hits"] == len(spec)
        assert stats["hits"] == len(spec)
        assert stats["entries"] == len(spec)

    def test_memory_only_put_skips_the_disk(self, tmp_path):
        problem = LifetimeProblem(
            workload=onoff_workload(frequency=1.0),
            battery=small_battery(),
            times=TIMES,
            delta=50.0,
        )
        result = run_sweep([problem], "mrm-uniformization", options=RunOptions(max_workers=1))[0]
        cache = SweepCache(tmp_path)
        cache.put("a" * 16, result, memory_only=True)
        assert cache.stats()["entries"] == 1
        assert cache.stats()["disk_entries"] == 0
        cache.put("b" * 16, result)
        assert cache.stats()["disk_entries"] == 1


class TestSweepScenarioErrorPickling:
    def test_round_trip_preserves_message_and_labels(self):
        error = SweepScenarioError("scenario 'x' failed: boom", ("x", "y"))
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, SweepScenarioError)
        assert str(clone) == str(error)
        assert clone.labels == ("x", "y")

    def test_round_trip_with_default_labels(self):
        clone = pickle.loads(pickle.dumps(SweepScenarioError("bare")))
        assert clone.labels == ()


class TestPartitioning:
    def test_chain_mates_stay_together(self):
        # Two capacities of the same transfer-free chain must land in one
        # chunk (so the worker can run them as one blocked pass), while a
        # different workload may go elsewhere.
        workload_a = onoff_workload(frequency=0.5, erlang_k=1)
        workload_b = onoff_workload(frequency=1.0, erlang_k=1)
        problems = [
            LifetimeProblem(workload=workload_a, battery=small_battery(2000.0), times=TIMES, delta=50.0),
            LifetimeProblem(workload=workload_a, battery=small_battery(2400.0), times=TIMES, delta=50.0),
            LifetimeProblem(workload=workload_b, battery=small_battery(2400.0), times=TIMES, delta=50.0),
        ]
        scenarios = [
            (index, problem, "mrm-uniformization")
            for index, problem in enumerate(problems)
        ]
        chunks = _partition(scenarios, 2)
        assert len(chunks) == 2
        for chunk in chunks:
            for indices, method, members in chunk:
                assert method == "mrm-uniformization"
                if 0 in indices or 1 in indices:
                    assert set(indices) == {0, 1}

    def test_partition_caps_at_group_count(self):
        problem = LifetimeProblem(
            workload=onoff_workload(frequency=1.0),
            battery=small_battery(),
            times=TIMES,
            delta=50.0,
        )
        chunks = _partition([(0, problem, "mrm-uniformization")], 8)
        assert len(chunks) == 1

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_equal_cost_groups_partition_deterministically(self):
        # Monte-Carlo scenarios with the same n_runs all estimate the same
        # cost, so the LPT tie-break (first scenario index) is what keeps
        # the assignment stable -- it must depend only on the scenario list.
        scenarios = [
            (
                index,
                LifetimeProblem(
                    workload=onoff_workload(frequency=1.0),
                    battery=small_battery(),
                    times=TIMES,
                    delta=50.0,
                    seed=index,
                    label=f"mc scenario {index}",
                ),
                "monte-carlo",
            )
            for index in range(4)
        ]

        def shape(chunks):
            return [[indices for indices, _, _ in chunk] for chunk in chunks]

        first = shape(_partition(scenarios, 2))
        # Equal costs fall back to first-index order, round-robined by the
        # greedy least-loaded rule.
        assert first == [[[0], [2]], [[1], [3]]]
        assert shape(_partition(scenarios, 2)) == first
