"""Tests of the benchmark provenance stamping and the regression differ."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

from repro.experiments.records import git_commit_sha, stamp_record, write_bench_record

_CHECKER_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_bench_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_regression", _CHECKER_PATH)
check_bench_regression = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_regression", check_bench_regression)
_spec.loader.exec_module(check_bench_regression)


class TestRecords:
    def test_write_bench_record_stamps_provenance(self, tmp_path):
        path = tmp_path / "BENCH_example.json"
        stamped = write_bench_record(path, {"results": {"speedup": 4.0}})
        on_disk = json.loads(path.read_text())
        assert on_disk == stamped
        provenance = on_disk["provenance"]
        assert set(provenance) == {"git_commit", "timestamp"}
        # ISO-8601 with an explicit UTC offset.
        assert "T" in provenance["timestamp"]
        assert provenance["timestamp"].endswith("+00:00")
        # tmp_path is not a git checkout, so the SHA falls back gracefully.
        assert provenance["git_commit"] == "unknown"
        # The repository itself resolves to a real SHA.
        repo_sha = git_commit_sha(Path(__file__).resolve().parent)
        assert repo_sha != "unknown" and len(repo_sha) == 40

    def test_stamp_record_does_not_mutate_the_input(self):
        record = {"results": {"speedup": 2.0}}
        stamped = stamp_record(record)
        assert "provenance" not in record
        assert stamped["results"] is record["results"]


class TestRegressionDiff:
    def test_collects_nested_speedups_only(self):
        record = {
            "results": {
                "speedup": 3.5,
                "required_speedup": 3.0,
                "wall_seconds": 1.0,
                "flag": True,
            },
            "fast_path": {"results": {"speedup": 12.0}},
            "provenance": {"git_commit": "abc", "timestamp": "now"},
        }
        assert check_bench_regression.collect_speedups(record) == {
            "results.speedup": 3.5,
            "fast_path.results.speedup": 12.0,
        }

    def test_compare_records_flags_large_regressions_only(self):
        baseline = {"results": {"speedup": 10.0}}
        within = {"results": {"speedup": 8.0}}  # -20%: allowed
        beyond = {"results": {"speedup": 7.0}}  # -30%: regression
        assert check_bench_regression.compare_records(baseline, within) == []
        failures = check_bench_regression.compare_records(baseline, beyond)
        assert len(failures) == 1 and "results.speedup" in failures[0]
        # Improvements and new metrics never fail.
        improved = {"results": {"speedup": 40.0, "other_speedup": 1.0}}
        assert check_bench_regression.compare_records(baseline, improved) == []

    def test_unresolvable_baseline_ref_skips_with_notice(self, tmp_path, monkeypatch, capsys):
        """A shallow clone (no ``HEAD^``) must skip the diff, not error."""
        import subprocess

        repo = tmp_path / "shallow"
        repo.mkdir()
        subprocess.run(["git", "init", "-q"], cwd=repo, check=True)
        record = repo / "BENCH_x.json"
        record.write_text(json.dumps({"results": {"speedup": 3.0}}))
        subprocess.run(["git", "add", "BENCH_x.json"], cwd=repo, check=True)
        subprocess.run(
            ["git", "-c", "user.email=ci@example.invalid", "-c", "user.name=ci",
             "commit", "-q", "-m", "only commit"],
            cwd=repo,
            check=True,
        )
        monkeypatch.chdir(repo)
        # HEAD^ does not exist on a single-commit history: skip, exit 0.
        assert (
            check_bench_regression.main(["BENCH_x.json", "--baseline-ref", "HEAD^"]) == 0
        )
        out = capsys.readouterr().out
        assert "does not resolve" in out and "skipping" in out
        # A resolvable ref without the file also skips per record.
        assert (
            check_bench_regression.main(
                ["BENCH_missing.json", "--baseline-ref", "HEAD"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no fresh record" in out

    def test_outside_any_git_checkout_skips_with_notice(self, tmp_path, monkeypatch, capsys):
        record = tmp_path / "BENCH_x.json"
        record.write_text(json.dumps({"results": {"speedup": 3.0}}))
        monkeypatch.chdir(tmp_path)
        assert check_bench_regression.main(["BENCH_x.json"]) == 0
        assert "does not resolve" in capsys.readouterr().out

    def test_corrupt_fresh_record_skips_with_notice(self, tmp_path, capsys):
        base_dir = tmp_path / "base"
        base_dir.mkdir()
        (base_dir / "BENCH_x.json").write_text(json.dumps({"results": {"speedup": 3.0}}))
        fresh = tmp_path / "BENCH_x.json"
        fresh.write_text("{not json")
        assert (
            check_bench_regression.main([str(fresh), "--baseline-dir", str(base_dir)])
            == 0
        )
        assert "not valid JSON" in capsys.readouterr().out

    def test_main_with_baseline_dir(self, tmp_path):
        fresh_dir = tmp_path / "fresh"
        base_dir = tmp_path / "base"
        fresh_dir.mkdir()
        base_dir.mkdir()
        (base_dir / "BENCH_x.json").write_text(
            json.dumps({"results": {"speedup": 10.0}})
        )
        fresh = fresh_dir / "BENCH_x.json"

        fresh.write_text(json.dumps({"results": {"speedup": 9.0}}))
        assert (
            check_bench_regression.main([str(fresh), "--baseline-dir", str(base_dir)])
            == 0
        )
        fresh.write_text(json.dumps({"results": {"speedup": 5.0}}))
        assert (
            check_bench_regression.main([str(fresh), "--baseline-dir", str(base_dir)])
            == 1
        )
        # Missing baseline and missing fresh record both skip cleanly.
        lonely = fresh_dir / "BENCH_new.json"
        lonely.write_text(json.dumps({"results": {"speedup": 1.0}}))
        assert (
            check_bench_regression.main([str(lonely), "--baseline-dir", str(base_dir)])
            == 0
        )
        assert (
            check_bench_regression.main(
                [str(fresh_dir / "BENCH_absent.json"), "--baseline-dir", str(base_dir)]
            )
            == 0
        )
