"""Tests for the modified KiBaM and the parameter-fitting helpers."""

import numpy as np
import pytest

from repro.battery.kibam import KineticBatteryModel
from repro.battery.modified_kibam import ModifiedKineticBatteryModel
from repro.battery.parameters import (
    KiBaMParameters,
    fit_c_from_capacities,
    fit_k_to_lifetime,
    rao_battery_parameters,
)
from repro.battery.profiles import ConstantLoad, SquareWaveLoad
from repro.battery.units import minutes_from_seconds, seconds_from_minutes


class TestKiBaMParameters:
    def test_well_split(self):
        parameters = KiBaMParameters(capacity=7200.0, c=0.625, k=4.5e-5)
        assert parameters.available_capacity == pytest.approx(4500.0)
        assert parameters.bound_capacity == pytest.approx(2700.0)

    def test_from_mah(self):
        parameters = KiBaMParameters.from_mah(2000.0, c=0.625, k_per_second=4.5e-5)
        assert parameters.capacity == pytest.approx(7200.0)
        assert parameters.capacity_mah == pytest.approx(2000.0)

    def test_k_per_hour_matches_paper(self):
        # The paper quotes k = 4.5e-5 /s = 1.96e-2 /h (their rounding is loose).
        parameters = rao_battery_parameters()
        assert parameters.k_per_hour == pytest.approx(0.162, rel=1e-2)

    def test_k_prime(self):
        parameters = KiBaMParameters(capacity=100.0, c=0.5, k=0.01)
        assert parameters.k_prime == pytest.approx(0.04)
        assert KiBaMParameters(capacity=100.0, c=1.0, k=0.0).k_prime == np.inf

    def test_with_methods(self):
        parameters = rao_battery_parameters()
        assert parameters.with_capacity(100.0).capacity == 100.0
        assert parameters.with_c(1.0).c == 1.0
        assert parameters.with_k(0.0).k == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0.0, "c": 0.5, "k": 0.0},
        {"capacity": 10.0, "c": 0.0, "k": 0.0},
        {"capacity": 10.0, "c": 1.5, "k": 0.0},
        {"capacity": 10.0, "c": 0.5, "k": -1.0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            KiBaMParameters(**kwargs)


class TestParameterFitting:
    def test_fit_c_from_capacities(self):
        assert fit_c_from_capacities(4500.0, 7200.0) == pytest.approx(0.625)

    def test_fit_c_rejects_inverted_capacities(self):
        with pytest.raises(ValueError):
            fit_c_from_capacities(7200.0, 4500.0)

    def test_fit_k_recovers_paper_constant(self):
        # Fitting k so the 0.96 A lifetime is 91 minutes must give a value
        # close to the paper's 4.5e-5 /s.
        fitted = fit_k_to_lifetime(7200.0, 0.625, 0.96, seconds_from_minutes(91.0))
        assert fitted == pytest.approx(4.5e-5, rel=0.05)

    def test_fit_k_round_trip(self):
        true_k = 2.3e-5
        model = KineticBatteryModel(KiBaMParameters(capacity=7200.0, c=0.625, k=true_k))
        lifetime = model.lifetime(ConstantLoad(0.96))
        fitted = fit_k_to_lifetime(7200.0, 0.625, 0.96, lifetime)
        assert fitted == pytest.approx(true_k, rel=1e-4)

    def test_fit_k_rejects_unreachable_lifetime(self):
        # Shorter than draining the available well alone, or longer than ideal.
        with pytest.raises(ValueError):
            fit_k_to_lifetime(7200.0, 0.625, 0.96, 1000.0)
        with pytest.raises(ValueError):
            fit_k_to_lifetime(7200.0, 0.625, 0.96, 10000.0)


class TestModifiedKiBaM:
    def test_rejects_single_well(self):
        with pytest.raises(ValueError):
            ModifiedKineticBatteryModel(KiBaMParameters(capacity=100.0, c=1.0, k=0.0))

    def test_table1_continuous_lifetime(self, paper_battery):
        model = ModifiedKineticBatteryModel(paper_battery)
        lifetime = minutes_from_seconds(model.lifetime(ConstantLoad(0.96)))
        assert lifetime == pytest.approx(89.0, abs=1.5)

    @pytest.mark.parametrize("frequency", [1.0, 0.2])
    def test_table1_square_wave_lifetime(self, paper_battery, frequency):
        model = ModifiedKineticBatteryModel(paper_battery)
        lifetime = minutes_from_seconds(model.lifetime(SquareWaveLoad(0.96, frequency=frequency)))
        assert lifetime == pytest.approx(193.0, abs=2.5)

    def test_recovers_less_than_plain_kibam(self, paper_battery):
        plain = KineticBatteryModel(paper_battery)
        modified = ModifiedKineticBatteryModel(paper_battery)
        profile = SquareWaveLoad(0.96, frequency=0.2)
        assert modified.lifetime(profile) < plain.lifetime(profile)

    def test_discharge_trajectory(self, paper_battery):
        model = ModifiedKineticBatteryModel(paper_battery)
        times = np.linspace(0.0, 8000.0, 17)
        result = model.discharge(SquareWaveLoad(0.96, frequency=0.001), times)
        assert result.available_charge[0] == pytest.approx(4500.0, rel=1e-6)
        assert np.all(np.diff(result.bound_charge) <= 1e-6)

    def test_stochastic_lifetime_close_to_deterministic(self, paper_battery, rng):
        model = ModifiedKineticBatteryModel(paper_battery)
        profile = ConstantLoad(0.96)
        deterministic = model.lifetime(profile)
        stochastic = model.mean_stochastic_lifetime(profile, rng, n_runs=5)
        # Under a continuous load there is little room for recovery, so the
        # stochastic variant stays close to the deterministic solution.
        assert stochastic == pytest.approx(deterministic, rel=0.1)

    def test_stochastic_lifetime_requires_positive_slot(self, paper_battery, rng):
        model = ModifiedKineticBatteryModel(paper_battery)
        with pytest.raises(ValueError):
            model.lifetime_stochastic(ConstantLoad(1.0), rng, slot_duration=0.0)
