"""Property-based tests of the structural chain validators.

Random valid CTMCs must pass every validator; five families of mutated
models -- perturbed row sums, flipped off-diagonal signs, disconnected
absorbing states, inconsistent Kronecker factor shapes and fake lumping
partitions -- must each fail with a diagnostic that names the offending
state, entry, term or block.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import ContractViolationWarning, override_checks
from repro.markov.kronecker import KroneckerGenerator, KroneckerTerm
from repro.markov.validate import (
    ValidationError,
    check_chain,
    check_generator,
    validate_absorbing,
    validate_generator,
    validate_kronecker,
    validate_lumping,
)


def random_generator(n: int, seed: int, *, density: float = 0.8) -> np.ndarray:
    """A random dense Q-matrix with every off-diagonal rate positive-ish."""
    rng = np.random.default_rng(seed)
    rates = rng.uniform(0.1, 5.0, size=(n, n))
    mask = rng.uniform(size=(n, n)) < density
    rates = np.where(mask, rates, 0.0)
    np.fill_diagonal(rates, 0.0)
    np.fill_diagonal(rates, -rates.sum(axis=1))
    return rates


def absorbing_chain(n: int, seed: int) -> np.ndarray:
    """A birth-death chain drifting into the absorbing last state."""
    rng = np.random.default_rng(seed)
    q = np.zeros((n, n))
    for i in range(n - 1):
        q[i, i + 1] = rng.uniform(0.5, 2.0)
        if i > 0:
            q[i, i - 1] = rng.uniform(0.1, 1.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


# ----------------------------------------------------------------------
# valid models pass
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=2, max_value=10), seed=st.integers(0, 2**31 - 1))
def test_random_valid_generators_pass(n: int, seed: int) -> None:
    q = random_generator(n, seed)
    validate_generator(q)
    validate_generator(sp.csr_matrix(q))
    validate_generator(q, rate=float(np.max(-np.diagonal(q))) * 1.02)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=3, max_value=10), seed=st.integers(0, 2**31 - 1))
def test_random_absorbing_chains_pass(n: int, seed: int) -> None:
    q = absorbing_chain(n, seed)
    initial = np.zeros(n)
    initial[0] = 1.0
    validate_absorbing(q, initial, [n - 1])


@settings(max_examples=25, deadline=None)
@given(
    dims=st.lists(st.integers(min_value=2, max_value=4), min_size=2, max_size=3),
    seed=st.integers(0, 2**31 - 1),
)
def test_random_kronecker_operators_pass(dims: list[int], seed: int) -> None:
    rng = np.random.default_rng(seed)
    terms = []
    for axis, dim in enumerate(dims):
        local = np.triu(rng.uniform(0.1, 2.0, size=(dim, dim)), k=1)
        terms.append(
            KroneckerTerm(factors=((axis, sp.csr_matrix(local)),), scales=())
        )
    operator = KroneckerGenerator(tuple(dims), terms)
    validate_kronecker(operator)


@settings(max_examples=25, deadline=None)
@given(n_blocks=st.integers(min_value=2, max_value=5), seed=st.integers(0, 2**31 - 1))
def test_replicated_block_lumping_passes(n_blocks: int, seed: int) -> None:
    # Duplicate every state of a valid quotient chain: the pairs form an
    # exactly lumpable partition by construction.
    lumped = random_generator(n_blocks, seed)
    # Lift each block rate equally onto the two copies of the target block;
    # the duplicated states are exchangeable by construction.
    full = np.kron(lumped, np.full((2, 2), 0.5))
    np.fill_diagonal(full, 0.0)
    full = np.where(full > 0.0, full, 0.0)
    np.fill_diagonal(full, -full.sum(axis=1))
    partition = np.repeat(np.arange(n_blocks), 2)
    validate_lumping(full, partition)


# ----------------------------------------------------------------------
# mutated models fail with an attributable diagnostic
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(0, 2**31 - 1),
    state=st.integers(min_value=0, max_value=7),
)
def test_perturbed_row_sum_names_the_row(n: int, seed: int, state: int) -> None:
    state %= n
    q = random_generator(n, seed)
    q[state, (state + 1) % n] += 0.5  # row sum now 0.5, diagonal untouched
    with pytest.raises(ValidationError, match=rf"row {state} .*sums to"):
        validate_generator(q)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=8), seed=st.integers(0, 2**31 - 1))
def test_flipped_sign_names_the_entry(n: int, seed: int) -> None:
    q = random_generator(n, seed, density=1.0)
    row, col = 0, 1
    q[row, row] += 2.0 * q[row, col]  # keep the row sum at zero
    q[row, col] = -q[row, col]
    with pytest.raises(
        ValidationError, match=rf"\({row}, {col}\) is negative off-diagonal"
    ):
        validate_generator(q)
    with pytest.raises(ValidationError, match="negative off-diagonal"):
        validate_generator(sp.csr_matrix(q))


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=4, max_value=10), seed=st.integers(0, 2**31 - 1))
def test_disconnected_absorbing_state_is_reported(n: int, seed: int) -> None:
    q = absorbing_chain(n, seed)
    # Cut the only inbound edge of the absorbing state and re-close the row:
    # the chain then cycles forever among the transient states.
    q[n - 2, n - 2] += q[n - 2, n - 1]
    q[n - 2, n - 1] = 0.0
    q[n - 2, 0] += -q[n - 2, n - 2] - q[n - 2, :].sum() + q[n - 2, n - 2]
    np.fill_diagonal(q, 0.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    initial = np.zeros(n)
    initial[0] = 1.0
    with pytest.raises(ValidationError, match="can never fail|cannot reach"):
        validate_absorbing(q, initial, [n - 1])


def test_trapped_recurrent_class_names_the_state() -> None:
    # 0 -> 1 -> absorbing 3, but 0 -> 2 leaks into a self-contained loop
    # {2} that never fails.
    q = np.array(
        [
            [-2.0, 1.0, 1.0, 0.0],
            [0.0, -1.0, 0.0, 1.0],
            [0.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
        ]
    )
    initial = np.array([1.0, 0.0, 0.0, 0.0])
    # State 2 is a second absorbing state the chain does not declare.
    with pytest.raises(ValidationError, match=r"state 2 .*cannot reach"):
        validate_absorbing(q, initial, [3])


@settings(max_examples=25, deadline=None)
@given(
    dim_a=st.integers(min_value=2, max_value=4),
    dim_b=st.integers(min_value=2, max_value=4),
    seed=st.integers(0, 2**31 - 1),
)
def test_inconsistent_kronecker_factor_shape_names_term_and_axis(
    dim_a: int, dim_b: int, seed: int
) -> None:
    rng = np.random.default_rng(seed)
    good_a = np.triu(rng.uniform(0.1, 2.0, size=(dim_a, dim_a)), k=1)
    good_b = np.triu(rng.uniform(0.1, 2.0, size=(dim_b, dim_b)), k=1)
    wrong = sp.csr_matrix(
        np.triu(rng.uniform(0.1, 2.0, size=(dim_b + 1, dim_b + 1)), k=1)
    )
    terms = [
        KroneckerTerm(factors=((0, sp.csr_matrix(good_a)),), scales=()),
        KroneckerTerm(factors=((1, sp.csr_matrix(good_b)),), scales=()),
    ]
    operator = KroneckerGenerator((dim_a, dim_b), terms)
    # The constructor enforces factor shapes, so corrupt the prepared term
    # in place -- exactly the inconsistency the validator must attribute.
    operator._terms = (
        operator.terms[0],
        KroneckerTerm(factors=((1, wrong),), scales=()),
    )
    with pytest.raises(
        ValidationError, match=r"term 1: factor on axis 1 has shape"
    ):
        validate_kronecker(operator)


@settings(max_examples=25, deadline=None)
@given(n_blocks=st.integers(min_value=2, max_value=5), seed=st.integers(0, 2**31 - 1))
def test_fake_lumping_partition_names_state_and_block(
    n_blocks: int, seed: int
) -> None:
    lumped = random_generator(n_blocks, seed)
    full = np.kron(lumped, np.full((2, 2), 0.5))
    np.fill_diagonal(full, 0.0)
    full = np.where(full > 0.0, full, 0.0)
    np.fill_diagonal(full, -full.sum(axis=1))
    # Perturb one state's rate into another block: its exit rate now
    # disagrees with its block twin, so the partition stops being exact.
    full[0, 2] += 1.0
    full[0, 0] -= 1.0
    partition = np.repeat(np.arange(n_blocks), 2)
    with pytest.raises(
        ValidationError, match=r"state \d+ \(block 0\).*exit rates are not preserved"
    ):
        validate_lumping(full, partition)


def test_lumped_generator_crosscheck_names_the_entry() -> None:
    full = np.array(
        [
            [-1.0, 0.5, 0.5],
            [1.0, -1.5, 0.5],
            [1.0, 0.5, -1.5],
        ]
    )
    partition = np.array([0, 1, 1])
    wrong_quotient = np.array([[-2.0, 2.0], [1.0, -1.0]])
    with pytest.raises(ValidationError, match=r"entry \(0, 0\)"):
        validate_lumping(full, partition, wrong_quotient)


# ----------------------------------------------------------------------
# the REPRO_CHECKS hooks
# ----------------------------------------------------------------------


class _FakeChain:
    def __init__(self, generator: np.ndarray, initial: np.ndarray, empty: list[int]):
        self.generator = sp.csr_matrix(generator)
        self.initial_distribution = initial
        self.empty_states = np.asarray(empty, dtype=np.int64)


def _broken_chain() -> _FakeChain:
    q = absorbing_chain(4, seed=7)
    q[0, 1] += 0.25  # break the row-sum law
    initial = np.zeros(4)
    initial[0] = 1.0
    return _FakeChain(q, initial, [3])


def test_check_hooks_raise_in_strict_mode(strict_checks) -> None:
    with pytest.raises(ValidationError):
        check_chain(_broken_chain())
    with pytest.raises(ValidationError):
        check_generator(_broken_chain().generator)


def test_check_hooks_warn_in_warn_mode() -> None:
    with override_checks("warn"):
        with pytest.warns(ContractViolationWarning, match="row 0"):
            check_chain(_broken_chain())


def test_check_hooks_are_silent_when_off() -> None:
    with override_checks("off"):
        check_chain(_broken_chain())
        check_generator(_broken_chain().generator)


def test_check_chain_accepts_a_valid_chain(strict_checks) -> None:
    q = absorbing_chain(5, seed=11)
    initial = np.zeros(5)
    initial[0] = 1.0
    check_chain(_FakeChain(q, initial, [4]))
