"""Tests for the analytical Kinetic Battery Model.

Several tests check the model directly against the numbers of the paper
(Table 1, Figure 2); others cross-check the closed-form stepping against an
independent ODE integration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.ideal import IdealBattery
from repro.battery.kibam import KiBaMState, KineticBatteryModel
from repro.battery.parameters import KiBaMParameters, rao_battery_parameters
from repro.battery.profiles import ConstantLoad, PiecewiseConstantLoad, SquareWaveLoad
from repro.battery.units import minutes_from_seconds


@pytest.fixture
def paper_kibam(paper_battery):
    return KineticBatteryModel(paper_battery)


class TestBasics:
    def test_initial_state_split(self, paper_kibam):
        state = paper_kibam.initial_state()
        assert state.available == pytest.approx(4500.0)
        assert state.bound == pytest.approx(2700.0)
        assert state.total == pytest.approx(7200.0)
        assert not state.is_empty()

    def test_initial_heights_are_equal(self, paper_kibam):
        h1, h2 = paper_kibam.heights(paper_kibam.initial_state())
        assert h1 == pytest.approx(h2)
        assert h1 == pytest.approx(7200.0)

    def test_charge_is_conserved_without_load(self, paper_kibam):
        state = paper_kibam.step(paper_kibam.initial_state(), current=0.0, duration=1000.0)
        assert state.total == pytest.approx(7200.0)

    def test_total_charge_decreases_linearly_under_load(self, paper_kibam):
        state = paper_kibam.step(paper_kibam.initial_state(), current=0.96, duration=100.0)
        assert state.total == pytest.approx(7200.0 - 96.0)


class TestTable1:
    """Reproduction of the KiBaM column of Table 1."""

    def test_continuous_lifetime_is_91_minutes(self, paper_kibam):
        lifetime = paper_kibam.lifetime(ConstantLoad(0.96))
        assert minutes_from_seconds(lifetime) == pytest.approx(91.0, abs=1.0)

    @pytest.mark.parametrize("frequency", [1.0, 0.2])
    def test_square_wave_lifetime_is_203_minutes(self, paper_kibam, frequency):
        lifetime = paper_kibam.lifetime(SquareWaveLoad(0.96, frequency=frequency))
        assert minutes_from_seconds(lifetime) == pytest.approx(203.0, abs=1.5)

    def test_square_wave_lifetime_is_frequency_independent(self, paper_kibam):
        fast = paper_kibam.lifetime(SquareWaveLoad(0.96, frequency=1.0))
        slow = paper_kibam.lifetime(SquareWaveLoad(0.96, frequency=0.2))
        assert fast == pytest.approx(slow, rel=5e-3)

    def test_pulsed_load_outlasts_double_the_continuous_lifetime(self, paper_kibam):
        # Recovery during the off periods makes the battery deliver more than
        # the same energy drawn continuously.
        continuous = paper_kibam.lifetime(ConstantLoad(0.96))
        pulsed = paper_kibam.lifetime(SquareWaveLoad(0.96, frequency=1.0))
        assert pulsed > 2.0 * continuous


class TestFigure2:
    def test_discharge_trajectory_shape(self, paper_kibam):
        profile = SquareWaveLoad(0.96, frequency=0.001)
        times = np.arange(0.0, 13001.0, 250.0)
        result = paper_kibam.discharge(profile, times)
        # Initial values match the well split.
        assert result.available_charge[0] == pytest.approx(4500.0)
        assert result.bound_charge[0] == pytest.approx(2700.0)
        # The bound charge decreases monotonically.
        assert np.all(np.diff(result.bound_charge) <= 1e-6)
        # The available charge recovers during off periods: it is not monotone.
        assert np.any(np.diff(result.available_charge) > 1e-6)
        # The battery dies shortly after 12000 s (paper Figure 2).
        assert result.lifetime is not None
        assert 11000.0 < result.lifetime < 13500.0

    def test_discharge_available_well_never_negative(self, paper_kibam):
        profile = SquareWaveLoad(0.96, frequency=0.001)
        result = paper_kibam.discharge(profile, np.linspace(0, 14000, 57))
        assert np.all(result.available_charge >= -1e-9)
        assert np.all(result.bound_charge >= -1e-9)


class TestDegenerateCases:
    def test_c_equal_one_matches_ideal_battery(self):
        parameters = KiBaMParameters(capacity=1000.0, c=1.0, k=0.0)
        kibam = KineticBatteryModel(parameters)
        ideal = IdealBattery(1000.0)
        profile = SquareWaveLoad(0.5, frequency=0.01)
        assert kibam.lifetime(profile) == pytest.approx(ideal.lifetime(profile), rel=1e-9)

    def test_k_zero_only_available_charge_is_delivered(self):
        parameters = KiBaMParameters(capacity=1000.0, c=0.4, k=0.0)
        kibam = KineticBatteryModel(parameters)
        assert kibam.lifetime(ConstantLoad(1.0)) == pytest.approx(400.0)

    def test_very_large_k_delivers_almost_everything(self):
        parameters = KiBaMParameters(capacity=1000.0, c=0.4, k=10.0)
        kibam = KineticBatteryModel(parameters)
        assert kibam.lifetime(ConstantLoad(1.0)) == pytest.approx(1000.0, rel=0.01)

    def test_zero_load_never_empties(self, paper_kibam):
        assert paper_kibam.lifetime(ConstantLoad(0.0)) is None


class TestRecovery:
    def test_available_charge_recovers_during_idle(self, paper_kibam):
        drained = paper_kibam.step(paper_kibam.initial_state(), current=0.96, duration=1000.0)
        rested = paper_kibam.step(drained, current=0.0, duration=5000.0)
        assert rested.available > drained.available
        assert rested.bound < drained.bound
        assert rested.total == pytest.approx(drained.total)

    def test_heights_equalise_after_long_rest(self, paper_kibam):
        drained = paper_kibam.step(paper_kibam.initial_state(), current=0.96, duration=2000.0)
        rested = paper_kibam.step(drained, current=0.0, duration=10_000_000.0)
        h1, h2 = paper_kibam.heights(rested)
        assert h1 == pytest.approx(h2, rel=1e-6)

    def test_time_to_empty_detected_within_segment(self, paper_kibam):
        state = KiBaMState(available=10.0, bound=2000.0)
        crossing = paper_kibam.time_to_empty(state, current=1.0, duration=100.0)
        assert crossing is not None
        assert 0.0 < crossing < 100.0
        at_crossing = paper_kibam.step(state, 1.0, crossing)
        assert at_crossing.available == pytest.approx(0.0, abs=1e-6)

    def test_time_to_empty_none_when_surviving(self, paper_kibam):
        crossing = paper_kibam.time_to_empty(paper_kibam.initial_state(), 0.96, 100.0)
        assert crossing is None

    def test_time_to_empty_zero_for_empty_state(self, paper_kibam):
        assert paper_kibam.time_to_empty(KiBaMState(0.0, 100.0), 1.0, 10.0) == 0.0


class TestOdeCrossCheck:
    @pytest.mark.parametrize(
        "profile",
        [
            ConstantLoad(0.96),
            SquareWaveLoad(0.96, frequency=0.001),
            PiecewiseConstantLoad([2000.0, 3000.0, 2000.0], [0.5, 0.0, 1.5]),
        ],
    )
    def test_analytic_lifetime_matches_ode(self, paper_battery, profile):
        model = KineticBatteryModel(paper_battery)
        analytic = model.lifetime(profile)
        ode = model.lifetime_ode(profile)
        assert analytic is not None and ode is not None
        assert analytic == pytest.approx(ode, rel=1e-4)

    @given(
        current=st.floats(min_value=0.3, max_value=3.0),
        c=st.floats(min_value=0.2, max_value=0.95),
        k=st.floats(min_value=1e-6, max_value=1e-3),
    )
    @settings(max_examples=10, deadline=None)
    def test_constant_load_analytic_matches_ode_property(self, current, c, k):
        parameters = KiBaMParameters(capacity=2000.0, c=c, k=k)
        model = KineticBatteryModel(parameters)
        profile = ConstantLoad(current)
        analytic = model.lifetime(profile)
        ode = model.lifetime_ode(profile)
        assert analytic == pytest.approx(ode, rel=1e-3)


class TestInvariants:
    @given(
        duration=st.floats(min_value=0.1, max_value=5000.0),
        current=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_step_conserves_total_charge_minus_consumption(self, duration, current):
        model = KineticBatteryModel(rao_battery_parameters())
        state = model.initial_state()
        crossing = model.time_to_empty(state, current, duration)
        if crossing is not None:
            duration = crossing * 0.5
        stepped = model.step(state, current, duration)
        assert stepped.total == pytest.approx(state.total - current * duration, rel=1e-9, abs=1e-6)
        assert stepped.available >= -1e-9
        assert stepped.bound >= -1e-9

    def test_negative_step_arguments_rejected(self, paper_kibam):
        with pytest.raises(ValueError):
            paper_kibam.step(paper_kibam.initial_state(), current=1.0, duration=-1.0)
        with pytest.raises(ValueError):
            paper_kibam.step(paper_kibam.initial_state(), current=-1.0, duration=1.0)
