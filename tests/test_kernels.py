"""Tests of the pluggable uniformisation compute kernels.

Covers :mod:`repro.markov.kernels` -- the knob resolution (including the
graceful fallback when numba is not importable), the reference segment
loop's steady-state detection contract, and hypothesis property tests
asserting that every kernel choice produces identical transient
distributions on random chains, both for assembled CSR matrices and for
matrix-free product-chain operators.  The numba-specific assertions are
skip-gated so the file passes (and still checks the fallback pipeline)
in environments without the ``[speed]`` extra.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.battery.parameters import KiBaMParameters
from repro.engine import solve_lifetime
from repro.engine.batch import ScenarioBatch, chain_merge_key
from repro.engine.problem import LifetimeProblem
from repro.engine.workspace import SolveWorkspace
from repro.markov.kernels import (
    KERNEL_CHOICES,
    SEGMENT_COMPLETED,
    SEGMENT_START_INVARIANT,
    SEGMENT_TAIL_COLLAPSED,
    CompiledKernel,
    ScipyKernel,
    _set_numba_probe,
    build_kernel,
    numba_available,
    resolve_kernel,
    segment_python,
)
from repro.markov.kronecker import UniformizedOperator
from repro.markov.poisson import (
    clear_poisson_caches,
    fox_glynn,
    poisson_cache_diagnostics,
    shared_poisson_windows,
)
from repro.markov.uniformization import TransientPropagator
from repro.multibattery import MultiBatterySystem
from repro.multibattery.policies import get_policy
from repro.workload.base import WorkloadModel


@pytest.fixture
def probe():
    """Force the numba probe for a test, restoring the real probe after."""

    yield _set_numba_probe
    _set_numba_probe(None)


@st.composite
def random_generators(draw):
    """Random irreducible-ish CTMC generators with 2--5 states."""
    n = draw(st.integers(min_value=2, max_value=5))
    rates = draw(
        st.lists(
            st.lists(st.floats(min_value=0.0, max_value=4.0), min_size=n, max_size=n),
            min_size=n,
            max_size=n,
        )
    )
    matrix = np.asarray(rates, dtype=float)
    np.fill_diagonal(matrix, 0.0)
    # Guarantee a cycle so the chain mixes.
    for i in range(n):
        matrix[i, (i + 1) % n] += 0.4
    np.fill_diagonal(matrix, -matrix.sum(axis=1))
    return matrix


def two_battery_chains():
    """One small bank discretised both assembled and matrix-free."""
    workload = WorkloadModel(
        state_names=("busy", "idle"),
        generator=np.array([[-0.02, 0.02], [0.02, -0.02]]),
        currents=np.array([0.5, 0.05]),
        initial_distribution=np.array([1.0, 0.0]),
    )
    battery = KiBaMParameters(capacity=60.0, c=0.625, k=1e-3)
    system = MultiBatterySystem(
        workload=workload,
        batteries=(battery, battery),
        policy=get_policy("static-split"),
        failures_to_die=1,
    )
    delta = battery.available_capacity / 4.0
    return system.discretize(delta, backend="assembled"), system.discretize(
        delta, backend="matrix-free"
    )


# ----------------------------------------------------------------------
# Knob resolution and graceful degradation.
# ----------------------------------------------------------------------
class TestResolution:
    def test_unknown_kernel_is_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("turbo", matrix_free=False)

    def test_matrix_free_always_resolves_to_scipy(self):
        for choice in KERNEL_CHOICES:
            assert resolve_kernel(choice, matrix_free=True) == "scipy"

    def test_scipy_is_never_upgraded(self, probe):
        probe(True)
        assert resolve_kernel("scipy", matrix_free=False) == "scipy"

    def test_auto_and_compiled_follow_the_probe(self, probe):
        probe(False)
        assert resolve_kernel("auto", matrix_free=False) == "scipy"
        assert resolve_kernel("compiled", matrix_free=False) == "scipy"
        probe(True)
        assert resolve_kernel("auto", matrix_free=False) == "compiled"
        assert resolve_kernel("compiled", matrix_free=False) == "compiled"

    def test_probe_reflects_reality(self):
        assert isinstance(numba_available(), bool)
        expected = "compiled" if numba_available() else "scipy"
        assert resolve_kernel("auto", matrix_free=False) == expected

    def test_build_kernel_fallback_without_numba(self, probe):
        probe(False)
        matrix = sp.identity(3, format="csr")
        built = build_kernel(matrix, "compiled")
        assert type(built) is ScipyKernel
        assert built.name == "scipy"

    def test_compiled_kernel_constructor_degrades(self, probe):
        probe(False)
        matrix = sp.random(6, 6, density=0.5, format="csr", random_state=7)
        kernel = CompiledKernel(matrix)
        assert kernel.name == "scipy"
        block = np.arange(12.0).reshape(2, 6)
        np.testing.assert_allclose(kernel.spmm(block), block @ matrix)


# ----------------------------------------------------------------------
# The reference segment loop's detection contract.
# ----------------------------------------------------------------------
class TestSegmentLoop:
    def _mixture(self, matrix, v, weights, left, right):
        expected = np.zeros_like(v)
        power = v.copy()
        for n in range(right + 1):
            if n >= left:
                expected += weights[n - left] * power
            power = power @ matrix
        return expected

    def test_completed_segment_is_the_poisson_mixture(self):
        rng = np.random.default_rng(3)
        matrix = rng.random((4, 4))
        matrix /= matrix.sum(axis=1, keepdims=True)
        v = rng.random((2, 4))
        weights = np.array([0.1, 0.2, 0.3, 0.25, 0.15])
        result = segment_python(lambda b: b @ matrix, v, weights, 2, 6, 0.0)
        assert result.status == SEGMENT_COMPLETED
        assert result.performed == 6
        assert result.break_index == 6
        np.testing.assert_allclose(
            result.accumulated, self._mixture(matrix, v, weights, 2, 6), atol=1e-14
        )

    def test_invariant_start_is_flagged_without_accumulating(self):
        matrix = np.eye(3)
        v = np.array([[0.2, 0.3, 0.5]])
        weights = np.full(5, 0.2)
        result = segment_python(lambda b: b @ matrix, v, weights, 0, 4, 1e-9)
        assert result.status == SEGMENT_START_INVARIANT
        assert result.break_index == 0
        assert result.performed == 1

    def test_tail_collapse_matches_the_full_sweep(self):
        # Every state jumps to state 0 in one step, so the power iterates
        # are constant from n = 1 on: collapsing the tail onto the
        # remaining Poisson mass is exact.
        matrix = np.zeros((3, 3))
        matrix[:, 0] = 1.0
        v = np.array([[0.1, 0.4, 0.5]])
        weights = np.full(8, 0.125)
        lazy = segment_python(lambda b: b @ matrix, v, weights, 0, 7, 1e-9)
        full = segment_python(lambda b: b @ matrix, v, weights, 0, 7, 0.0)
        assert lazy.status == SEGMENT_TAIL_COLLAPSED
        assert lazy.performed < full.performed
        np.testing.assert_allclose(lazy.accumulated, full.accumulated, atol=1e-14)

    def test_progress_callback_counts_products(self):
        matrix = np.eye(2) * 0.5 + 0.25
        counts = []
        segment_python(
            lambda b: b @ matrix,
            np.ones((1, 2)) / 2.0,
            np.full(4, 0.25),
            0,
            3,
            0.0,
            counts.append,
        )
        assert counts == [1, 2, 3]


# ----------------------------------------------------------------------
# Every kernel choice computes identical transient laws.
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        generator=random_generators(),
        horizon=st.floats(min_value=0.5, max_value=25.0),
    )
    def test_kernels_agree_on_random_chains(self, generator, horizon):
        alpha = np.zeros(generator.shape[0])
        alpha[0] = 1.0
        times = np.linspace(horizon / 3.0, horizon, 3)
        reference = None
        for choice in KERNEL_CHOICES:
            propagator = TransientPropagator(generator, kernel=choice)
            result = propagator.transient(alpha, times)
            assert propagator.kernel in ("scipy", "compiled")
            if reference is None:
                reference = result.distributions
            else:
                np.testing.assert_allclose(
                    result.distributions, reference, atol=1e-12
                )

    @settings(max_examples=15, deadline=None)
    @given(generator=random_generators())
    def test_modes_agree_per_kernel(self, generator):
        alpha = np.zeros(generator.shape[0])
        alpha[0] = 1.0
        times = np.array([1.0, 4.0, 16.0])
        for choice in ("scipy", "compiled"):
            propagator = TransientPropagator(generator, kernel=choice)
            incremental = propagator.transient(alpha, times, mode="incremental")
            single = propagator.transient(alpha, times, mode="single-pass")
            np.testing.assert_allclose(
                incremental.distributions, single.distributions, atol=1e-10
            )

    def test_propagator_reports_the_resolved_kernel(self, probe):
        generator = np.array([[-1.0, 1.0], [2.0, -2.0]])
        probe(False)
        assert TransientPropagator(generator, kernel="compiled").kernel == "scipy"
        assert TransientPropagator(generator, kernel="auto").kernel == "scipy"
        assert TransientPropagator(generator, kernel="scipy").kernel == "scipy"

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_compiled_kernel_actually_compiles(self):
        generator = np.array(
            [[-1.0, 0.7, 0.3], [0.5, -1.5, 1.0], [0.2, 0.8, -1.0]]
        )
        alpha = np.array([1.0, 0.0, 0.0])
        times = np.array([0.5, 2.0, 8.0])
        compiled = TransientPropagator(generator, kernel="compiled")
        assert compiled.kernel == "compiled"
        scipy_side = TransientPropagator(generator, kernel="scipy")
        np.testing.assert_allclose(
            compiled.transient(alpha, times).distributions,
            scipy_side.transient(alpha, times).distributions,
            atol=1e-12,
        )


# ----------------------------------------------------------------------
# Matrix-free operators: forced scipy kernel, fused uniformised apply.
# ----------------------------------------------------------------------
class TestMatrixFreeKernels:
    def test_matrix_free_chain_forces_scipy_and_matches_assembled(self):
        assembled, matrix_free = two_battery_chains()
        alpha = np.asarray(assembled.initial_distribution, dtype=float)
        times = np.array([200.0, 800.0, 2000.0])
        reference = TransientPropagator(
            assembled.generator, kernel="scipy"
        ).transient(alpha, times)
        operator_side = TransientPropagator(
            matrix_free.generator, kernel="compiled"
        )
        assert operator_side.kernel == "scipy"
        np.testing.assert_allclose(
            operator_side.transient(alpha, times).distributions,
            reference.distributions,
            atol=1e-10,
        )

    def test_fused_operator_matches_unfused_and_assembled(self):
        assembled, matrix_free = two_battery_chains()
        generator = matrix_free.generator
        rate = 1.001 * float(np.max(-assembled.generator.diagonal()))
        fused = UniformizedOperator(generator, rate, fused=True)
        unfused = UniformizedOperator(generator, rate, fused=False)
        assert fused.fused and not unfused.fused
        rng = np.random.default_rng(11)
        block = rng.random((3, generator.shape[0]))
        explicit = block + (block @ assembled.generator) / rate
        np.testing.assert_allclose(block @ fused, explicit, atol=1e-12)
        np.testing.assert_allclose(block @ unfused, explicit, atol=1e-12)


# ----------------------------------------------------------------------
# The shared Poisson window table.
# ----------------------------------------------------------------------
class TestSharedPoissonWindows:
    @settings(max_examples=30, deadline=None)
    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=500.0), min_size=1, max_size=6
        )
    )
    def test_shared_windows_match_fox_glynn(self, rates):
        windows = shared_poisson_windows(tuple(rates), 1e-12)
        assert len(windows) == len(rates)
        for rate, window in zip(rates, windows):
            direct = fox_glynn(rate, 1e-12)
            assert (window.left, window.right) == (direct.left, direct.right)
            np.testing.assert_allclose(window.weights, direct.weights, atol=1e-12)
            assert window.total == pytest.approx(direct.total, abs=1e-12)

    def test_negative_rates_are_rejected(self):
        with pytest.raises(ValueError):
            shared_poisson_windows((1.0, -0.5))

    def test_cache_diagnostics_count_hits_and_misses(self):
        clear_poisson_caches()
        before = poisson_cache_diagnostics()
        assert before["poisson_shared_cache_hits"] == 0
        shared_poisson_windows((3.0, 7.0))
        shared_poisson_windows((3.0, 7.0))
        after = poisson_cache_diagnostics()
        assert after["poisson_shared_cache_misses"] == 1
        assert after["poisson_shared_cache_hits"] == 1
        assert after["poisson_shared_cache_maxsize"] is not None
        assert after["poisson_window_cache_maxsize"] is not None


# ----------------------------------------------------------------------
# Engine threading of the kernel knob.
# ----------------------------------------------------------------------
class TestEngineKernelKnob:
    def _problem(self, **kwargs) -> LifetimeProblem:
        workload = WorkloadModel(
            state_names=("on",),
            generator=np.zeros((1, 1)),
            currents=np.array([0.5]),
            initial_distribution=np.array([1.0]),
        )
        battery = KiBaMParameters(capacity=20.0, c=1.0, k=0.0)
        return LifetimeProblem(
            workload=workload,
            battery=battery,
            times=np.linspace(5.0, 60.0, 4),
            delta=battery.available_capacity / 8.0,
            **kwargs,
        )

    def test_problem_validates_the_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            self._problem(kernel="turbo")
        assert self._problem().with_kernel("scipy").kernel == "scipy"

    def test_solve_reports_kernel_and_poisson_counters(self):
        result = solve_lifetime(self._problem(kernel="scipy"), method="mrm-uniformization")
        assert result.diagnostics["kernel"] == "scipy"
        assert "poisson_shared_cache_hits" in result.diagnostics

    def test_kernels_join_the_merge_key_but_not_fingerprints(self):
        from repro.engine.sweep import scenario_fingerprint

        scipy_side = self._problem(kernel="scipy")
        auto_side = self._problem(kernel="auto")
        assert chain_merge_key(scipy_side) != chain_merge_key(auto_side)
        assert scenario_fingerprint(scipy_side, "mrm-uniformization") == scenario_fingerprint(
            auto_side, "mrm-uniformization"
        )

    def test_batch_solves_mixed_kernels_identically(self):
        batch = ScenarioBatch(
            [
                self._problem(kernel="scipy").with_label("scipy"),
                self._problem(kernel="auto").with_label("auto"),
            ]
        )
        outcome = batch.run("mrm-uniformization")
        np.testing.assert_allclose(
            outcome[0].distribution.probabilities,
            outcome[1].distribution.probabilities,
            atol=1e-12,
        )


# ----------------------------------------------------------------------
# Workspace-level Poisson cache accounting.
# ----------------------------------------------------------------------
class TestWorkspacePoissonAccounting:
    """Accuracy of the per-workspace ``poisson_cache_*`` deltas.

    The Poisson memos are process-global; each :class:`SolveWorkspace`
    snapshots the counters at creation and reports deltas, and forwards
    each increment to the obs metrics registry exactly once even when
    ``diagnostics()`` is called repeatedly.
    """

    def _problem(self, **kwargs) -> LifetimeProblem:
        workload = WorkloadModel(
            state_names=("on",),
            generator=np.zeros((1, 1)),
            currents=np.array([0.5]),
            initial_distribution=np.array([1.0]),
        )
        battery = KiBaMParameters(capacity=20.0, c=1.0, k=0.0)
        return LifetimeProblem(
            workload=workload,
            battery=battery,
            times=np.linspace(5.0, 60.0, 4),
            delta=battery.available_capacity / 8.0,
            **kwargs,
        )

    def test_workspace_baselines_isolate_earlier_activity(self):
        clear_poisson_caches()
        first = SolveWorkspace()
        shared_poisson_windows((3.0, 7.0))
        shared_poisson_windows((3.0, 7.0))
        seen_by_first = first.diagnostics()
        assert seen_by_first["poisson_cache_misses"] == 1
        assert seen_by_first["poisson_cache_hits"] == 1

        # A workspace created *after* that activity starts from zero ...
        second = SolveWorkspace()
        fresh = second.diagnostics()
        assert fresh["poisson_cache_hits"] == 0
        assert fresh["poisson_cache_misses"] == 0

        # ... and both see activity that happens after its creation.
        shared_poisson_windows((3.0, 7.0))
        assert second.diagnostics()["poisson_cache_hits"] == 1
        assert first.diagnostics()["poisson_cache_hits"] == 2

    def test_repeated_diagnostics_forward_each_increment_once(self):
        clear_poisson_caches()
        with obs.override_metrics() as registry:
            workspace = SolveWorkspace()
            shared_poisson_windows((2.0, 5.0))
            shared_poisson_windows((2.0, 5.0))
            for _ in range(3):  # re-reads must not re-forward
                reported = workspace.diagnostics()
            counters = registry.snapshot()["counters"]
            assert counters["poisson_cache_hits"] == reported["poisson_cache_hits"] == 1
            assert counters["poisson_cache_misses"] == reported["poisson_cache_misses"] == 1

            # Only the increment since the last read is forwarded.
            shared_poisson_windows((2.0, 5.0))
            reported = workspace.diagnostics()
            counters = registry.snapshot()["counters"]
            assert counters["poisson_cache_hits"] == reported["poisson_cache_hits"] == 2

    def test_mixed_kernel_batch_reports_accurate_poisson_totals(self):
        clear_poisson_caches()
        problems = [
            self._problem(kernel="scipy").with_label("scipy"),
            self._problem(kernel="auto").with_label("auto"),
        ]
        with obs.override_metrics() as registry:
            workspace = SolveWorkspace()
            outcome = ScenarioBatch(problems).run("mrm-uniformization", workspace=workspace)
            reported = workspace.diagnostics()
            counters = registry.snapshot()["counters"]
        assert len(outcome) == 2
        # Both kernels uniformise the same chain, so the windows computed
        # for one are hits for the other; the totals the workspace reports
        # are exactly what reached the registry, despite the per-result
        # diagnostics() calls in between.
        assert reported["poisson_cache_misses"] >= 1
        assert reported["poisson_cache_hits"] >= 1
        assert counters["poisson_cache_hits"] == reported["poisson_cache_hits"]
        assert counters["poisson_cache_misses"] == reported["poisson_cache_misses"]
