"""Tests for the unified lifetime-solver engine (:mod:`repro.engine`)."""

import numpy as np
import pytest

from repro.battery.parameters import KiBaMParameters, rao_battery_parameters
from repro.battery.profiles import ConstantLoad
from repro.engine import (
    LifetimeProblem,
    LifetimeResult,
    ScenarioBatch,
    SolveWorkspace,
    UnknownSolverError,
    UnsupportedProblemError,
    available_solvers,
    choose_method,
    default_delta,
    deterministic_lifetime,
    discharge_trajectory,
    get_solver,
    register_solver,
    solve_lifetime,
)
from repro.workload.onoff import onoff_workload
from repro.workload.simple import simple_workload


@pytest.fixture(scope="module")
def onoff():
    return onoff_workload(frequency=1.0, erlang_k=1)


@pytest.fixture(scope="module")
def single_well_problem(onoff):
    return LifetimeProblem(
        workload=onoff,
        battery=KiBaMParameters(capacity=7200.0, c=1.0, k=0.0),
        times=np.linspace(6000.0, 20000.0, 15),
        delta=50.0,
        n_runs=1500,
        seed=42,
    )


class TestRegistry:
    def test_builtin_solvers_registered(self):
        names = available_solvers()
        assert {"analytic", "auto", "monte-carlo", "mrm-uniformization"}.issubset(names)

    def test_unknown_solver_raises(self):
        with pytest.raises(UnknownSolverError) as excinfo:
            get_solver("sericola-exact")
        # The error names the missing solver and lists the alternatives.
        assert "sericola-exact" in str(excinfo.value)
        assert "mrm-uniformization" in str(excinfo.value)

    def test_unknown_solver_is_a_key_error(self):
        with pytest.raises(KeyError):
            get_solver("nope")

    def test_duplicate_registration_rejected(self):
        class Dummy:
            name = "analytic"

            def supports(self, problem):
                return True

            def solve(self, problem, *, workspace=None):
                raise NotImplementedError

        with pytest.raises(ValueError):
            register_solver("analytic", Dummy())

    def test_custom_solver_roundtrip(self, single_well_problem):
        class Constant:
            name = "test-constant"

            def supports(self, problem):
                return True

            def solve(self, problem, *, workspace=None):
                from repro.analysis.distribution import LifetimeDistribution

                return LifetimeResult(
                    distribution=LifetimeDistribution(
                        times=problem.times,
                        probabilities=np.linspace(0.0, 1.0, problem.times.size),
                        label="constant",
                    ),
                    method=self.name,
                )

        solver = Constant()
        register_solver(solver.name, solver, replace=True)
        result = solve_lifetime(single_well_problem, "test-constant")
        assert result.method == "test-constant"


class TestProblemValidation:
    def test_decreasing_times_rejected(self, onoff):
        with pytest.raises(ValueError):
            LifetimeProblem(
                workload=onoff,
                battery=rao_battery_parameters(),
                times=[2.0, 1.0],
            )

    def test_negative_times_rejected(self, onoff):
        with pytest.raises(ValueError):
            LifetimeProblem(
                workload=onoff, battery=rao_battery_parameters(), times=[-1.0, 1.0]
            )

    def test_delta_larger_than_available_capacity_rejected(self, onoff):
        with pytest.raises(ValueError):
            LifetimeProblem(
                workload=onoff,
                battery=KiBaMParameters(capacity=100.0, c=0.5, k=0.0),
                times=[1.0],
                delta=60.0,
            )

    def test_default_delta_used_when_omitted(self, onoff):
        battery = rao_battery_parameters()
        problem = LifetimeProblem(workload=onoff, battery=battery, times=[1.0])
        assert problem.effective_delta == pytest.approx(default_delta(battery))

    def test_estimated_mrm_states_matches_grid(self, single_well_problem):
        # 7200/50 + 1 = 145 levels, one well, two workload states.
        assert single_well_problem.estimated_mrm_states() == 2 * 145


class TestAutoDispatch:
    def test_two_level_single_well_goes_analytic(self, single_well_problem):
        assert choose_method(single_well_problem) == "analytic"

    def test_disconnected_wells_go_analytic(self, onoff):
        problem = LifetimeProblem(
            workload=onoff,
            battery=KiBaMParameters(capacity=7200.0, c=0.625, k=0.0),
            times=[10000.0],
        )
        assert choose_method(problem) == "analytic"

    def test_transfer_disables_analytic(self, onoff):
        problem = LifetimeProblem(
            workload=onoff, battery=rao_battery_parameters(), times=[10000.0], delta=100.0
        )
        assert choose_method(problem) == "mrm-uniformization"

    def test_multi_level_currents_disable_analytic(self):
        problem = LifetimeProblem(
            workload=simple_workload(),  # three distinct currents
            battery=KiBaMParameters(capacity=2880.0, c=1.0, k=0.0),
            times=[3600.0],
            delta=36.0,
        )
        assert choose_method(problem) == "mrm-uniformization"

    def test_oversized_chain_falls_back_to_monte_carlo(self):
        problem = LifetimeProblem(
            workload=simple_workload(),
            battery=KiBaMParameters(capacity=2880.0, c=1.0, k=0.0),
            times=[3600.0],
            delta=36.0,
        )
        states = problem.estimated_mrm_states()
        assert choose_method(problem, max_mrm_states=states) == "mrm-uniformization"
        assert choose_method(problem, max_mrm_states=states - 1) == "monte-carlo"

    def test_auto_result_records_dispatch(self, single_well_problem):
        result = solve_lifetime(single_well_problem, "auto")
        assert result.method == "analytic"
        assert result.diagnostics["auto_dispatched_to"] == "analytic"


class TestSolverAgreement:
    """The paper's 2-state on/off workload, solved by all three machineries."""

    @pytest.fixture(scope="class")
    def curves(self, single_well_problem):
        problem = single_well_problem
        return {
            "analytic": solve_lifetime(problem, "analytic"),
            "mrm": solve_lifetime(problem.with_delta(10.0), "mrm-uniformization"),
            "monte-carlo": solve_lifetime(problem, "monte-carlo"),
        }

    def test_all_methods_recorded(self, curves):
        assert curves["analytic"].method == "analytic"
        assert curves["mrm"].method == "mrm-uniformization"
        assert curves["monte-carlo"].method == "monte-carlo"

    def test_monte_carlo_matches_analytic(self, curves):
        # DKW bound for 1500 runs at 99% confidence is ~0.042.
        distance = np.max(
            np.abs(curves["monte-carlo"].probabilities - curves["analytic"].probabilities)
        )
        assert distance < 0.08

    def test_mrm_median_matches_analytic(self, curves):
        # The approximation converges slowly in sup-norm for this nearly
        # deterministic lifetime (as the paper reports), but the median
        # lifetime agrees to a few percent already at Delta=10.
        median_exact = curves["analytic"].quantile(0.5)
        median_mrm = curves["mrm"].quantile(0.5)
        assert median_mrm == pytest.approx(median_exact, rel=0.05)

    def test_mrm_converges_towards_analytic(self, single_well_problem, curves):
        exact = curves["analytic"].probabilities
        distances = []
        for delta in (400.0, 100.0, 25.0):
            result = solve_lifetime(
                single_well_problem.with_delta(delta), "mrm-uniformization"
            )
            distances.append(float(np.max(np.abs(result.probabilities - exact))))
        assert distances[2] < distances[1] < distances[0]

    def test_analytic_rejects_transfer_problems(self, onoff):
        problem = LifetimeProblem(
            workload=onoff, battery=rao_battery_parameters(), times=[10000.0]
        )
        with pytest.raises(UnsupportedProblemError):
            get_solver("analytic").solve(problem)


class TestWorkspaceReuse:
    def test_chain_built_once_across_time_grids(self, onoff):
        workspace = SolveWorkspace()
        base = LifetimeProblem(
            workload=onoff,
            battery=rao_battery_parameters(),
            times=np.linspace(6000.0, 20000.0, 8),
            delta=200.0,
        )
        solve_lifetime(base, "mrm-uniformization", workspace=workspace)
        refined = base.with_times(np.linspace(6000.0, 20000.0, 16))
        solve_lifetime(refined, "mrm-uniformization", workspace=workspace)
        assert workspace.builds == 1
        assert workspace.build_hits == 1

    def test_core_solver_reuses_propagator(self, onoff):
        from repro.core.kibamrm import KiBaMRM
        from repro.core.lifetime import LifetimeSolver

        solver = LifetimeSolver(
            KiBaMRM(workload=onoff, battery=KiBaMParameters(capacity=720.0, c=1.0, k=0.0)),
            delta=10.0,
        )
        first = solver.propagator
        solver.solve([1000.0, 2000.0])
        solver.solve([1500.0])
        assert solver.propagator is first


class TestScenarioBatch:
    def test_stacked_capacity_sweep_matches_independent_solves(self, onoff):
        times = np.linspace(6000.0, 20000.0, 15)
        batteries = [
            KiBaMParameters(capacity=float(C), c=1.0, k=0.0)
            for C in np.linspace(5000.0, 7200.0, 5)
        ]
        base = LifetimeProblem(
            workload=onoff, battery=batteries[-1], times=times, delta=100.0
        )
        batch = ScenarioBatch.over_batteries(base, batteries)
        outcome = batch.run("mrm-uniformization")
        assert outcome.diagnostics["merged_groups"] == 1
        assert outcome.diagnostics["chain_builds"] == 1
        for problem, batched in zip(batch.problems, outcome):
            single = solve_lifetime(problem, "mrm-uniformization")
            assert np.allclose(single.probabilities, batched.probabilities, atol=1e-12)

    def test_transfer_chains_are_not_merged_across_capacities(self, onoff):
        times = np.linspace(6000.0, 20000.0, 5)
        batteries = [
            KiBaMParameters(capacity=C, c=0.625, k=4.5e-5) for C in (6000.0, 7200.0)
        ]
        base = LifetimeProblem(workload=onoff, battery=batteries[-1], times=times, delta=200.0)
        outcome = ScenarioBatch.over_batteries(base, batteries).run("mrm-uniformization")
        assert outcome.diagnostics["merged_groups"] == 0
        assert outcome.diagnostics["chain_builds"] == 2
        for problem, batched in zip(
            ScenarioBatch.over_batteries(base, batteries).problems, outcome
        ):
            single = solve_lifetime(problem, "mrm-uniformization")
            assert np.allclose(single.probabilities, batched.probabilities, atol=1e-12)

    def test_identical_chain_different_grids_single_build(self, onoff):
        battery = rao_battery_parameters()
        problems = [
            LifetimeProblem(
                workload=onoff,
                battery=battery,
                times=np.linspace(6000.0, 20000.0, n),
                delta=200.0,
                label=f"grid-{n}",
            )
            for n in (5, 9)
        ]
        outcome = ScenarioBatch(problems).run("mrm-uniformization")
        assert outcome.diagnostics["chain_builds"] == 1
        assert outcome[0].diagnostics["batch_rows"] == 1
        for problem, batched in zip(problems, outcome):
            single = solve_lifetime(problem, "mrm-uniformization")
            assert np.allclose(single.probabilities, batched.probabilities, atol=1e-12)

    def test_over_deltas_labels(self, onoff):
        base = LifetimeProblem(
            workload=onoff,
            battery=KiBaMParameters(capacity=720.0, c=1.0, k=0.0),
            times=[1000.0, 1500.0],
            delta=10.0,
        )
        batch = ScenarioBatch.over_deltas(base, [20.0, 10.0])
        outcome = batch.run("mrm-uniformization")
        assert [r.label for r in outcome] == ["Delta=20", "Delta=10"]

    def test_auto_batch_mixes_methods(self, onoff):
        times = np.linspace(6000.0, 20000.0, 9)
        analytic_problem = LifetimeProblem(
            workload=onoff,
            battery=KiBaMParameters(capacity=7200.0, c=1.0, k=0.0),
            times=times,
        )
        mrm_problem = LifetimeProblem(
            workload=onoff, battery=rao_battery_parameters(), times=times, delta=200.0
        )
        outcome = ScenarioBatch([analytic_problem, mrm_problem]).run("auto")
        assert outcome[0].method == "analytic"
        assert outcome[1].method == "mrm-uniformization"

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            ScenarioBatch([])

    def test_merged_results_stay_in_scenario_order(self, onoff):
        # Shuffled capacities: the blocked pass anchors the chain at the
        # largest capacity, but the results must come back in the order the
        # scenarios were given, not in merge or capacity order.
        times = np.linspace(6000.0, 20000.0, 15)
        capacities = [6400.0, 7200.0, 5000.0, 6800.0, 5600.0]
        batteries = [KiBaMParameters(capacity=C, c=1.0, k=0.0) for C in capacities]
        base = LifetimeProblem(workload=onoff, battery=batteries[0], times=times, delta=100.0)
        labels = [f"scenario-{C:g}" for C in capacities]
        batch = ScenarioBatch.over_batteries(base, batteries, labels=labels)
        outcome = batch.run("mrm-uniformization")

        assert outcome.diagnostics["merged_groups"] == 1
        assert outcome.diagnostics["stacked_scenarios"] == len(capacities)
        assert [result.label for result in outcome] == labels
        # A larger battery lives stochastically longer: Pr{empty at t} is
        # ordered opposite to capacity at every grid point, which pins each
        # curve to its scenario.
        order = np.argsort(capacities)
        mid = times.size // 2
        values = [outcome[int(i)].probabilities[mid] for i in order]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_batch_labels_map_to_scenarios(self, onoff):
        batteries = [KiBaMParameters(capacity=C, c=1.0, k=0.0) for C in (6000.0, 7200.0)]
        base = LifetimeProblem(
            workload=onoff,
            battery=batteries[0],
            times=np.linspace(6000.0, 20000.0, 9),
            delta=200.0,
        )
        batch = ScenarioBatch.over_batteries(base, batteries)
        outcome = batch.run("mrm-uniformization")
        for problem, result in zip(batch.problems, outcome):
            assert result.label == problem.label
            assert f"C={problem.battery.capacity:g}" in result.label

    def test_three_solvers_agree_on_shared_sweep(self, onoff):
        # One small single-well sweep, solved by all three machineries in
        # one batch each; the curves must agree within solver tolerances
        # (DKW ~0.05 for 2000 Monte-Carlo runs, coarse-delta bias for MRM).
        times = np.linspace(8000.0, 18000.0, 11)
        batteries = [KiBaMParameters(capacity=C, c=1.0, k=0.0) for C in (6000.0, 7200.0)]
        base = LifetimeProblem(
            workload=onoff,
            battery=batteries[0],
            times=times,
            delta=10.0,
            n_runs=2000,
            seed=1234,
        )
        batch = ScenarioBatch.over_batteries(base, batteries)
        by_method = {
            method: ScenarioBatch(batch.problems).run(method)
            for method in ("analytic", "mrm-uniformization", "monte-carlo")
        }
        for scenario in range(len(batteries)):
            exact = by_method["analytic"][scenario].probabilities
            mrm = by_method["mrm-uniformization"][scenario].probabilities
            monte_carlo = by_method["monte-carlo"][scenario].probabilities
            assert float(np.max(np.abs(mrm - exact))) < 0.25
            assert float(np.max(np.abs(monte_carlo - exact))) < 0.08
            # The nearly deterministic median agrees much tighter than the
            # sup-norm for the MRM approximation.
            mid_exact = by_method["analytic"][scenario].quantile(0.5)
            mid_mrm = by_method["mrm-uniformization"][scenario].quantile(0.5)
            assert mid_mrm == pytest.approx(mid_exact, rel=0.05)

    def test_batch_diagnostics_record_cdf_mass(self, onoff):
        problem = LifetimeProblem(
            workload=onoff,
            battery=KiBaMParameters(capacity=720.0, c=1.0, k=0.0),
            times=[500.0, 1000.0],
            delta=10.0,
        )
        outcome = ScenarioBatch([problem]).run("mrm-uniformization")
        diagnostics = outcome[0].diagnostics
        assert diagnostics["cdf_mass_achieved"] == pytest.approx(
            outcome[0].probabilities[-1]
        )
        assert diagnostics["cdf_complete"] is False

    def test_result_summary_shape(self, single_well_problem):
        result = solve_lifetime(single_well_problem, "analytic")
        summary = result.summary()
        assert summary["method"] == "analytic"
        assert 0.5 in summary["percentiles_seconds"]
        assert summary["mean_lifetime_seconds"] > 0


class TestDeterministicHelpers:
    def test_lifetime_from_parameters(self):
        battery = KiBaMParameters(capacity=720.0, c=1.0, k=0.0)
        lifetime = deterministic_lifetime(battery, ConstantLoad(1.0))
        assert lifetime == pytest.approx(720.0, rel=1e-6)

    def test_trajectory_from_parameters(self):
        battery = KiBaMParameters(capacity=720.0, c=1.0, k=0.0)
        trajectory = discharge_trajectory(battery, ConstantLoad(1.0), [0.0, 360.0])
        assert trajectory.available_charge[0] == pytest.approx(720.0)
        assert trajectory.available_charge[1] == pytest.approx(360.0)
