"""Tests for phase-type distributions."""

import numpy as np
import pytest

from repro.markov.phase_type import PhaseTypeDistribution, erlang, exponential, hyperexponential


class TestExponential:
    def test_moments(self):
        distribution = exponential(2.0)
        assert distribution.mean == pytest.approx(0.5)
        assert distribution.variance == pytest.approx(0.25)

    def test_cdf_matches_closed_form(self):
        distribution = exponential(3.0)
        xs = np.array([0.0, 0.1, 0.5, 2.0])
        assert np.allclose(distribution.cdf(xs), 1.0 - np.exp(-3.0 * xs), atol=1e-10)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            exponential(0.0)


class TestErlang:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_moments(self, k):
        rate = 4.0
        distribution = erlang(k, rate)
        assert distribution.mean == pytest.approx(k / rate)
        assert distribution.variance == pytest.approx(k / rate**2)

    def test_squared_coefficient_of_variation_decreases(self):
        # Erlang-K approaches a deterministic value: scv = 1/K.
        scvs = []
        for k in (1, 2, 4, 8):
            distribution = erlang(k, k * 2.0)  # keep the mean fixed at 0.5
            scvs.append(distribution.variance / distribution.mean**2)
        assert np.allclose(scvs, [1.0, 0.5, 0.25, 0.125])
        assert all(a > b for a, b in zip(scvs, scvs[1:]))

    def test_cdf_matches_scipy(self):
        from scipy.stats import erlang as scipy_erlang

        distribution = erlang(3, 2.0)
        xs = np.linspace(0.1, 4.0, 7)
        assert np.allclose(distribution.cdf(xs), scipy_erlang.cdf(xs, 3, scale=0.5), atol=1e-8)

    def test_pdf_matches_scipy(self):
        from scipy.stats import erlang as scipy_erlang

        distribution = erlang(2, 1.5)
        xs = np.linspace(0.1, 4.0, 5)
        assert np.allclose(distribution.pdf(xs), scipy_erlang.pdf(xs, 2, scale=1 / 1.5), atol=1e-8)

    def test_sampling_mean(self, rng):
        distribution = erlang(3, 6.0)
        samples = distribution.sample(rng, size=3000)
        assert samples.mean() == pytest.approx(0.5, rel=0.1)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            erlang(0, 1.0)


class TestHyperexponential:
    def test_mean(self):
        distribution = hyperexponential([0.4, 0.6], [1.0, 2.0])
        assert distribution.mean == pytest.approx(0.4 / 1.0 + 0.6 / 2.0)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            hyperexponential([0.4, 0.4], [1.0, 2.0])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            hyperexponential([0.5, 0.5], [1.0, -2.0])


class TestPhaseTypeValidation:
    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            PhaseTypeDistribution(alpha=np.array([0.5, 0.2]), subgenerator=-np.eye(2))

    def test_positive_row_sum_rejected(self):
        with pytest.raises(ValueError):
            PhaseTypeDistribution(alpha=np.array([1.0]), subgenerator=np.array([[1.0]]))

    def test_cdf_zero_below_support(self):
        assert erlang(2, 1.0).cdf(-1.0) == 0.0
        assert erlang(2, 1.0).pdf(-1.0) == 0.0

    def test_moment_order_validation(self):
        with pytest.raises(ValueError):
            erlang(2, 1.0).moment(0)
