"""Tests for generator-matrix construction and validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.checking import dense_fallback
from repro.markov.generator import (
    GeneratorError,
    build_generator,
    embedded_jump_matrix,
    exit_rates,
    is_generator,
    restrict_generator,
    uniformized_matrix,
    validate_generator,
)


class TestBuildGenerator:
    def test_dense_generator_rows_sum_to_zero(self):
        generator = build_generator(3, [(0, 1, 2.0), (1, 2, 1.0), (2, 0, 0.5)])
        assert generator.shape == (3, 3)
        assert np.allclose(generator.sum(axis=1), 0.0)

    def test_sparse_generator_matches_dense(self):
        transitions = [(0, 1, 2.0), (1, 0, 3.0), (1, 2, 1.0), (2, 1, 4.0)]
        dense = build_generator(3, transitions)
        sparse = build_generator(3, transitions, sparse=True)
        assert sp.issparse(sparse)
        assert np.allclose(dense_fallback(sparse), dense)

    def test_duplicate_transitions_accumulate(self):
        generator = build_generator(2, [(0, 1, 1.0), (0, 1, 2.0)])
        assert generator[0, 1] == pytest.approx(3.0)
        assert generator[0, 0] == pytest.approx(-3.0)

    def test_zero_rate_transitions_are_ignored(self):
        generator = build_generator(2, [(0, 1, 0.0)])
        assert np.allclose(generator, 0.0)

    def test_self_loop_rejected(self):
        with pytest.raises(GeneratorError):
            build_generator(2, [(0, 0, 1.0)])

    def test_negative_rate_rejected(self):
        with pytest.raises(GeneratorError):
            build_generator(2, [(0, 1, -1.0)])

    def test_out_of_range_state_rejected(self):
        with pytest.raises(GeneratorError):
            build_generator(2, [(0, 2, 1.0)])

    def test_empty_state_space_rejected(self):
        with pytest.raises(GeneratorError):
            build_generator(0, [])


class TestValidateGenerator:
    def test_valid_generator_passes(self, three_state_generator):
        validate_generator(three_state_generator)
        assert is_generator(three_state_generator)

    def test_valid_sparse_generator_passes(self, three_state_generator):
        validate_generator(sp.csr_matrix(three_state_generator))

    def test_nonsquare_rejected(self):
        with pytest.raises(GeneratorError):
            validate_generator(np.zeros((2, 3)))

    def test_negative_offdiagonal_rejected(self):
        matrix = np.array([[-1.0, 1.0], [-0.5, 0.5]])
        with pytest.raises(GeneratorError):
            validate_generator(matrix)
        assert not is_generator(matrix)

    def test_nonzero_row_sum_rejected(self):
        matrix = np.array([[-1.0, 0.5], [1.0, -1.0]])
        with pytest.raises(GeneratorError):
            validate_generator(matrix)

    def test_positive_diagonal_rejected(self):
        matrix = np.array([[1.0, -1.0], [0.0, 0.0]])
        with pytest.raises(GeneratorError):
            validate_generator(matrix)


class TestExitRatesAndUniformization:
    def test_exit_rates(self, three_state_generator):
        assert np.allclose(exit_rates(three_state_generator), [3.0, 5.0, 1.0])

    def test_exit_rates_sparse(self, three_state_generator):
        assert np.allclose(exit_rates(sp.csr_matrix(three_state_generator)), [3.0, 5.0, 1.0])

    def test_uniformized_matrix_is_stochastic(self, three_state_generator):
        probability = uniformized_matrix(three_state_generator, 6.0)
        assert np.all(probability >= -1e-12)
        assert np.allclose(probability.sum(axis=1), 1.0)

    def test_uniformized_matrix_rate_too_small_rejected(self, three_state_generator):
        with pytest.raises(GeneratorError):
            uniformized_matrix(three_state_generator, 1.0)

    def test_uniformized_matrix_nonpositive_rate_rejected(self, three_state_generator):
        with pytest.raises(GeneratorError):
            uniformized_matrix(three_state_generator, 0.0)

    def test_uniformized_sparse_stays_sparse(self, three_state_generator):
        probability = uniformized_matrix(sp.csr_matrix(three_state_generator), 10.0)
        assert sp.issparse(probability)
        assert np.allclose(np.asarray(probability.sum(axis=1)).ravel(), 1.0)


class TestEmbeddedChain:
    def test_jump_probabilities(self, three_state_generator):
        jump = embedded_jump_matrix(three_state_generator)
        assert np.allclose(jump.sum(axis=1), 1.0)
        assert jump[0, 1] == pytest.approx(2.0 / 3.0)
        assert jump[0, 0] == 0.0

    def test_absorbing_state_gets_self_loop(self):
        generator = np.array([[-1.0, 1.0], [0.0, 0.0]])
        jump = embedded_jump_matrix(generator)
        assert jump[1, 1] == pytest.approx(1.0)

    def test_restrict_generator(self, three_state_generator):
        sub = restrict_generator(three_state_generator, [0, 2])
        assert sub.shape == (2, 2)
        assert sub[0, 0] == pytest.approx(-3.0)
        assert sub[0, 1] == pytest.approx(1.0)
