"""Integration tests: the three solution methods agree with each other.

These tests are small-scale versions of the paper's evaluation setups: the
Markovian approximation, the exact occupation-time algorithm and the
Monte-Carlo simulation are run on the same model and must tell the same
story.  Where the full-scale experiment would be too slow for a unit-test
suite, capacities are scaled down (the algorithms are identical, only the
uniformisation runs get shorter).
"""

import numpy as np
import pytest

from repro.analysis.distribution import LifetimeDistribution
from repro.battery.kibam import KineticBatteryModel
from repro.battery.parameters import KiBaMParameters
from repro.core.kibamrm import KiBaMRM
from repro.core.lifetime import LifetimeSolver
from repro.reward.occupation import two_level_lifetime_cdf
from repro.simulation.lifetime_sim import simulate_lifetime_distribution
from repro.workload.burst import burst_workload
from repro.workload.onoff import onoff_workload
from repro.workload.simple import simple_workload


class TestOnOffSingleWell:
    """Scaled-down Figure 7: approximation vs. exact vs. simulation."""

    CAPACITY = 720.0  # 1/10 of the paper's battery keeps runtimes small
    TIMES = np.linspace(800.0, 2600.0, 19)

    @pytest.fixture(scope="class")
    def workload(self):
        return onoff_workload(frequency=1.0, erlang_k=1)

    @pytest.fixture(scope="class")
    def exact_curve(self, workload):
        return LifetimeDistribution(
            times=self.TIMES,
            probabilities=two_level_lifetime_cdf(
                workload.generator,
                workload.initial_distribution,
                workload.currents,
                self.CAPACITY,
                self.TIMES,
            ),
            label="exact",
        )

    def test_simulation_matches_exact(self, workload, exact_curve):
        battery = KiBaMParameters(capacity=self.CAPACITY, c=1.0, k=0.0)
        result = simulate_lifetime_distribution(
            workload, KineticBatteryModel(battery), n_runs=1500, seed=7, horizon=6000.0
        )
        simulated = result.cdf(self.TIMES)
        assert np.max(np.abs(simulated - exact_curve.probabilities)) < 0.05

    def test_approximation_converges_to_exact(self, workload, exact_curve):
        battery = KiBaMParameters(capacity=self.CAPACITY, c=1.0, k=0.0)
        model = KiBaMRM(workload=workload, battery=battery)
        distances = []
        for delta in (20.0, 10.0, 5.0):
            curve = LifetimeSolver(model, delta).solve(self.TIMES)
            distances.append(float(np.max(np.abs(curve.probabilities - exact_curve.probabilities))))
        assert distances[0] >= distances[-1]
        assert distances[-1] < 0.25  # the paper reports slow convergence here

    def test_median_lifetime_matches_energy_balance(self, exact_curve):
        # Half the time is spent drawing 0.96 A, so the median lifetime is
        # about 2 * C / 0.96.
        median = exact_curve.quantile(0.5)
        assert median == pytest.approx(2.0 * self.CAPACITY / 0.96, rel=0.05)


class TestOnOffTwoWells:
    """Scaled-down Figure 8: approximation vs. simulation with recovery."""

    TIMES = np.linspace(800.0, 2600.0, 10)

    def test_approximation_tracks_simulation(self):
        workload = onoff_workload(frequency=1.0, erlang_k=1)
        # k is scaled up by 10 compared to the paper because the capacity is
        # scaled down by 10 (same relative recovery per lifetime).
        battery = KiBaMParameters(capacity=720.0, c=0.625, k=4.5e-4)
        model = KiBaMRM(workload=workload, battery=battery)
        approximation = LifetimeSolver(model, delta=10.0).solve(self.TIMES)
        simulation = simulate_lifetime_distribution(
            workload, KineticBatteryModel(battery), n_runs=800, seed=9, horizon=6000.0
        )
        distance = float(np.max(np.abs(approximation.probabilities - simulation.cdf(self.TIMES))))
        # The 2-D discretisation is coarse (as in the paper); just require the
        # curves to be in the same ballpark and correctly ordered in time.
        assert distance < 0.35
        assert np.all(np.diff(approximation.probabilities) >= -1e-9)

    def test_recovery_extends_lifetime_compared_to_available_only(self):
        workload = onoff_workload(frequency=1.0, erlang_k=1)
        with_recovery = KiBaMParameters(capacity=720.0, c=0.625, k=4.5e-4)
        available_only = KiBaMParameters(capacity=450.0, c=1.0, k=0.0)
        sim_recovery = simulate_lifetime_distribution(
            workload, KineticBatteryModel(with_recovery), n_runs=400, seed=11, horizon=6000.0
        )
        sim_available = simulate_lifetime_distribution(
            workload, KineticBatteryModel(available_only), n_runs=400, seed=12, horizon=6000.0
        )
        assert sim_recovery.mean_lifetime > sim_available.mean_lifetime


class TestSimpleAndBurstModels:
    """Scaled-down Figures 10/11: the burst model outlives the simple model."""

    def test_burst_model_lasts_longer(self):
        # 80 mAh battery (1/10 of the paper's) so lifetimes are a few hours.
        battery = KiBaMParameters.from_mah(80.0, c=0.625, k_per_second=4.5e-5)
        times = np.linspace(0.5, 6.0, 12) * 3600.0
        delta = 2.0 * 3.6  # 2 mAh
        simple_curve = LifetimeSolver(
            KiBaMRM(workload=simple_workload(), battery=battery), delta
        ).solve(times)
        burst_curve = LifetimeSolver(
            KiBaMRM(workload=burst_workload(), battery=battery), delta
        ).solve(times)
        # The burst model is less likely to have emptied the battery at every
        # time point (Figure 11).
        assert np.all(burst_curve.probabilities <= simple_curve.probabilities + 0.02)
        assert simple_curve.probabilities[-1] > 0.9

    def test_approximation_matches_simulation_for_simple_model(self):
        battery = KiBaMParameters.from_mah(80.0, c=0.625, k_per_second=4.5e-5)
        workload = simple_workload()
        times = np.linspace(0.5, 6.0, 12) * 3600.0
        approximation = LifetimeSolver(KiBaMRM(workload=workload, battery=battery), 2.0 * 3.6).solve(times)
        simulation = simulate_lifetime_distribution(
            workload, KineticBatteryModel(battery), n_runs=800, seed=21
        )
        distance = float(np.max(np.abs(approximation.probabilities - simulation.cdf(times))))
        assert distance < 0.12
