"""Tests for the expanded-CTMC construction (Q* of Section 5)."""

import numpy as np
import pytest

from repro.battery.parameters import KiBaMParameters
from repro.checking import dense_fallback
from repro.core.discretization import discretize
from repro.core.kibamrm import KiBaMRM
from repro.markov.generator import validate_generator
from repro.workload.onoff import onoff_workload
from repro.workload.simple import simple_workload


@pytest.fixture
def small_single_well_model():
    battery = KiBaMParameters(capacity=100.0, c=1.0, k=0.0)
    return KiBaMRM(workload=onoff_workload(frequency=0.01), battery=battery)


@pytest.fixture
def small_two_well_model():
    battery = KiBaMParameters(capacity=100.0, c=0.625, k=1e-3)
    return KiBaMRM(workload=simple_workload(), battery=battery)


class TestStructure:
    def test_expanded_state_count_single_well(self, small_single_well_model):
        discretized = discretize(small_single_well_model, delta=10.0)
        assert discretized.n_states == 2 * 11
        validate_generator(discretized.generator)

    def test_expanded_state_count_two_wells(self, small_two_well_model):
        discretized = discretize(small_two_well_model, delta=12.5)
        # u1 = 62.5 -> 6 levels; u2 = 37.5 -> 4 levels; 3 workload states.
        assert discretized.grid.n_levels1 == 6
        assert discretized.grid.n_levels2 == 4
        assert discretized.n_states == 3 * 6 * 4
        validate_generator(discretized.generator)

    def test_paper_state_count_for_figure7(self):
        battery = KiBaMParameters(capacity=7200.0, c=1.0, k=0.0)
        model = KiBaMRM(workload=onoff_workload(frequency=1.0), battery=battery)
        discretized = discretize(model, delta=5.0)
        assert discretized.n_states == 2882  # quoted in Section 6.1

    def test_initial_distribution_is_valid(self, small_two_well_model):
        discretized = discretize(small_two_well_model, delta=12.5)
        initial = discretized.initial_distribution
        assert initial.sum() == pytest.approx(1.0)
        assert np.count_nonzero(initial) == 1
        state, level1, level2 = discretized.grid.unflatten(int(np.argmax(initial)))
        assert int(state) == small_two_well_model.workload.state_index("idle")
        assert int(level1) == discretized.grid.n_levels1 - 2  # 62.5 As -> level 4 of 0..5
        assert int(level2) == discretized.grid.n_levels2 - 2

    def test_empty_states_are_absorbing(self, small_two_well_model):
        discretized = discretize(small_two_well_model, delta=12.5)
        generator = dense_fallback(discretized.generator)
        for index in discretized.empty_states:
            assert np.allclose(generator[index], 0.0)

    def test_empty_states_cover_all_j2_levels(self, small_two_well_model):
        discretized = discretize(small_two_well_model, delta=12.5)
        expected = small_two_well_model.workload.n_states * discretized.grid.n_levels2
        assert discretized.empty_states.size == expected


class TestTransitionRates:
    def test_consumption_rate_is_current_over_delta(self, small_single_well_model):
        delta = 10.0
        discretized = discretize(small_single_well_model, delta=delta)
        generator = dense_fallback(discretized.generator)
        grid = discretized.grid
        on_state = 0  # the on state draws 0.96 A
        source = int(grid.flat_index(on_state, 5, 0))
        target = int(grid.flat_index(on_state, 4, 0))
        assert generator[source, target] == pytest.approx(0.96 / delta)

    def test_workload_rates_are_copied(self, small_single_well_model):
        discretized = discretize(small_single_well_model, delta=10.0)
        generator = dense_fallback(discretized.generator)
        grid = discretized.grid
        source = int(grid.flat_index(0, 5, 0))
        target = int(grid.flat_index(1, 5, 0))
        assert generator[source, target] == pytest.approx(
            small_single_well_model.workload.generator[0, 1]
        )

    def test_transfer_rate_formula(self, small_two_well_model):
        delta = 12.5
        battery = small_two_well_model.battery
        discretized = discretize(small_two_well_model, delta=delta)
        generator = dense_fallback(discretized.generator)
        grid = discretized.grid
        state, j1, j2 = 0, 2, 3
        source = int(grid.flat_index(state, j1, j2))
        target = int(grid.flat_index(state, j1 + 1, j2 - 1))
        expected = battery.k * (j2 / (1.0 - battery.c) - j1 / battery.c)
        assert expected > 0
        assert generator[source, target] == pytest.approx(expected)

    def test_no_transfer_when_available_higher(self, small_two_well_model):
        delta = 12.5
        discretized = discretize(small_two_well_model, delta=delta)
        generator = dense_fallback(discretized.generator)
        grid = discretized.grid
        # j1 = 4, j2 = 1: h1 = 4/0.625 = 6.4 > h2 = 1/0.375 = 2.67 -> no transfer.
        source = int(grid.flat_index(0, 4, 1))
        target = int(grid.flat_index(0, 5, 0))
        assert generator[source, target] == 0.0

    def test_single_well_has_no_transfer_transitions(self, small_single_well_model):
        discretized = discretize(small_single_well_model, delta=10.0)
        generator = dense_fallback(discretized.generator)
        grid = discretized.grid
        # Any j1 -> j1+1 transition within the same workload state would be a transfer.
        for j1 in range(grid.n_levels1 - 1):
            source = int(grid.flat_index(0, j1, 0))
            target = int(grid.flat_index(0, j1 + 1, 0))
            assert generator[source, target] == 0.0


class TestHelpers:
    def test_empty_probability_of_initial_distribution_is_zero(self, small_two_well_model):
        discretized = discretize(small_two_well_model, delta=12.5)
        assert discretized.empty_probability(discretized.initial_distribution) == 0.0

    def test_workload_marginal_sums_to_one(self, small_two_well_model):
        discretized = discretize(small_two_well_model, delta=12.5)
        marginal = discretized.workload_state_probability(discretized.initial_distribution)
        assert marginal.shape == (1, 3)
        assert marginal.sum() == pytest.approx(1.0)

    def test_uniformization_rate_reported(self, small_single_well_model):
        discretized = discretize(small_single_well_model, delta=10.0)
        assert discretized.uniformization_rate > 0.0
        assert discretized.n_nonzero > 0
