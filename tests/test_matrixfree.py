"""Tests of the matrix-free product chains and the symmetry lumping.

Covers the :class:`~repro.markov.kronecker.KroneckerGenerator` operator
(hypothesis property test against the assembled Kronecker CSR on random
small banks), the exactness of the permutation-symmetry quotient (lumped
lifetime CDF equal to the unlumped one to ``1e-10``), the uniformisation
fast path on operators, and the engine's backend resolution, caching and
fingerprint behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.parameters import KiBaMParameters
from repro.engine import ScenarioBatch, solve_lifetime
from repro.engine.batch import chain_merge_key
from repro.engine.solvers import choose_method
from repro.engine.sweep import scenario_fingerprint
from repro.engine.workspace import SolveWorkspace
from repro.markov.generator import GeneratorError, exit_rates
from repro.markov.kronecker import (
    KroneckerGenerator,
    KroneckerTerm,
    UniformizedOperator,
    assembled_csr_bytes,
)
from repro.markov.uniformization import TransientPropagator
from repro.multibattery import (
    MultiBatteryProblem,
    MultiBatterySystem,
    multiset_count,
)
from repro.multibattery.lumping import (
    _binomial_table,
    _colex_ranks,
    discretize_lumped,
    enumerate_configurations,
)
from repro.multibattery.policies import get_policy
from repro.workload.base import WorkloadModel


def busy_idle_workload(busy_current: float = 0.5, idle_current: float = 0.05) -> WorkloadModel:
    return WorkloadModel(
        state_names=("busy", "idle"),
        generator=np.array([[-0.02, 0.02], [0.02, -0.02]]),
        currents=np.array([busy_current, idle_current]),
        initial_distribution=np.array([1.0, 0.0]),
    )


def small_bank_system(
    n_batteries: int,
    policy,
    *,
    c: float = 0.625,
    failures_to_die: int = 1,
    capacity: float = 60.0,
) -> tuple[MultiBatterySystem, float]:
    battery = KiBaMParameters(capacity=capacity, c=c, k=1e-3)
    system = MultiBatterySystem(
        workload=busy_idle_workload(),
        batteries=(battery,) * n_batteries,
        policy=policy,
        failures_to_die=failures_to_die,
    )
    return system, battery.available_capacity / 4.0


# ----------------------------------------------------------------------
# The operator against the assembled Kronecker CSR.
# ----------------------------------------------------------------------
class TestKroneckerOperator:
    @settings(max_examples=25, deadline=None)
    @given(
        n_batteries=st.integers(min_value=1, max_value=3),
        c=st.sampled_from([0.5, 0.625, 1.0]),
        policy_name=st.sampled_from(["static-split", "best-of", "round-robin", "skewed"]),
        failures=st.integers(min_value=1, max_value=3),
        levels=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matrix_free_apply_matches_assembled_csr(
        self, n_batteries, c, policy_name, failures, levels, seed
    ):
        """Property: ``v @ Q`` agrees between the operator and the CSR."""
        rng = np.random.default_rng(seed)
        if policy_name == "skewed":
            policy = get_policy(
                "static-split", weights=tuple(rng.uniform(0.2, 1.0, n_batteries))
            )
        else:
            policy = get_policy(policy_name)
        batteries = tuple(
            KiBaMParameters(capacity=float(rng.uniform(30.0, 60.0)), c=c, k=1e-3)
            for _ in range(n_batteries)
        )
        system = MultiBatterySystem(
            workload=busy_idle_workload(),
            batteries=batteries,
            policy=policy,
            failures_to_die=min(failures, n_batteries),
        )
        delta = min(b.available_capacity for b in batteries) / levels
        assembled = system.discretize(delta, backend="assembled")
        matrix_free = system.discretize(delta, backend="matrix-free")

        assert matrix_free.backend == "matrix-free"
        assert isinstance(matrix_free.generator, KroneckerGenerator)
        assert matrix_free.n_states == assembled.n_states
        block = rng.random((3, assembled.n_states))
        expected = block @ assembled.generator
        actual = matrix_free.generator.apply(block)
        scale = max(1.0, float(np.abs(expected).max()))
        assert np.abs(actual - expected).max() <= 1e-12 * scale
        assert (
            np.abs(matrix_free.generator.diagonal() - assembled.generator.diagonal()).max()
            <= 1e-12 * scale
        )
        # The implied entry count matches the truly assembled matrix.
        trimmed = assembled.generator.copy()
        trimmed.eliminate_zeros()
        assert matrix_free.generator.nnz == trimmed.nnz
        # Initial vectors and absorbing sets are backend-independent.
        np.testing.assert_array_equal(
            matrix_free.initial_distribution, assembled.initial_distribution
        )
        np.testing.assert_array_equal(matrix_free.empty_states, assembled.empty_states)

    def test_rmatmul_and_uniformized_operator(self):
        system, delta = small_bank_system(2, "best-of")
        chain = system.discretize(delta, backend="matrix-free")
        operator = chain.generator
        rng = np.random.default_rng(7)
        v = rng.random((2, chain.n_states))
        np.testing.assert_allclose(v @ operator, operator.apply(v), rtol=0, atol=0)
        rate = chain.uniformization_rate * 1.02
        uniformized = UniformizedOperator(operator, rate)
        np.testing.assert_allclose(
            v @ uniformized, v + operator.apply(v) / rate, rtol=1e-15, atol=1e-15
        )
        assert uniformized.shape == operator.shape
        assert exit_rates(operator).max() == pytest.approx(chain.uniformization_rate)

    def test_to_csr_round_trip_and_memory_guard(self):
        system, delta = small_bank_system(2, "static-split")
        chain = system.discretize(delta, backend="matrix-free")
        assembled = system.discretize(delta, backend="assembled").generator.copy()
        assembled.eliminate_zeros()
        rebuilt = chain.generator.to_csr()
        assert np.abs((rebuilt - assembled)).max() <= 1e-12
        with pytest.raises(MemoryError):
            chain.generator.to_csr(max_bytes=8)
        assert assembled_csr_bytes(chain.generator.nnz, chain.n_states) > 0

    def test_operator_validation_rejects_bad_structure(self):
        with pytest.raises(GeneratorError):
            KroneckerGenerator((2, 0), [])
        with pytest.raises(GeneratorError):
            KroneckerGenerator(
                (2, 2),
                [KroneckerTerm(factors=((0, np.array([[0.0, -1.0], [0.0, 0.0]])),))],
            )
        with pytest.raises(GeneratorError):
            KroneckerGenerator(
                (2, 2),
                [
                    KroneckerTerm(
                        factors=((0, np.array([[0.0, 1.0], [0.0, 0.0]])),),
                        scales=(np.full((2, 1), -1.0),),
                    )
                ],
            )
        with pytest.raises(GeneratorError):
            KroneckerGenerator(
                (2, 2),
                [KroneckerTerm(factors=((3, np.eye(2)),))],
            )

    def test_propagator_fast_path_runs_on_operators(self):
        """Incremental uniformisation + steady-state detection, matrix-free."""
        system, delta = small_bank_system(2, "best-of")
        assembled = system.discretize(delta, backend="assembled")
        matrix_free = system.discretize(delta, backend="matrix-free")
        times = np.linspace(0.0, 40000.0, 40)  # long flat tail after depletion
        projection = np.zeros(assembled.n_states)
        projection[assembled.empty_states] = 1.0

        reference = TransientPropagator(assembled.generator, validate=False)
        operator = TransientPropagator(matrix_free.generator)
        assert operator.is_matrix_free and not reference.is_matrix_free

        solved_ref = reference.transient_batch(
            assembled.initial_distribution[None, :],
            times,
            epsilon=1e-10,
            projection=projection,
        )
        solved_op = operator.transient_batch(
            matrix_free.initial_distribution[None, :],
            times,
            epsilon=1e-10,
            projection=projection,
        )
        np.testing.assert_allclose(solved_op.values, solved_ref.values, atol=1e-10)
        assert solved_op.steady_state_time is not None
        assert solved_op.iterations_saved > 0
        single_pass = operator.transient_batch(
            matrix_free.initial_distribution[None, :],
            times,
            epsilon=1e-10,
            projection=projection,
            mode="single-pass",
        )
        np.testing.assert_allclose(single_pass.values, solved_ref.values, atol=1e-8)


# ----------------------------------------------------------------------
# Permutation-symmetry lumping.
# ----------------------------------------------------------------------
class TestLumping:
    def test_configuration_ranking_is_a_bijection(self):
        for n_cells, n in [(5, 2), (4, 3), (7, 4)]:
            configs = enumerate_configurations(n_cells, n)
            assert configs.shape == (multiset_count(n_cells, n), n)
            table = _binomial_table(n_cells + n - 1, n)
            ranks = _colex_ranks(configs, table)
            assert sorted(ranks.tolist()) == list(range(configs.shape[0]))

    @pytest.mark.parametrize("policy", ["static-split", "best-of"])
    @pytest.mark.parametrize("n_batteries,failures", [(2, 1), (2, 2), (3, 2)])
    @pytest.mark.parametrize("c", [0.625, 1.0])
    def test_lumped_lifetime_cdf_is_exact(self, policy, n_batteries, failures, c):
        """The quotient chain's lifetime CDF equals the unlumped one to 1e-10."""
        system, delta = small_bank_system(
            n_batteries, policy, c=c, failures_to_die=failures
        )
        times = np.linspace(0.0, 8000.0, 33)
        full = system.discretize(delta, backend="assembled")
        lumped = system.discretize(delta, backend="lumped")

        assert lumped.n_states < full.n_states
        assert lumped.n_states == system.estimated_lumped_states(delta)
        # Exit rates are preserved by exact lumping, so both chains
        # uniformise at the same rate.
        assert lumped.uniformization_rate == pytest.approx(
            full.uniformization_rate, rel=1e-12
        )

        cdf_full = TransientPropagator(full.generator, validate=False).transient_batch(
            full.initial_distribution[None, :],
            times,
            epsilon=1e-12,
            projection=_indicator(full.n_states, full.empty_states),
        )
        cdf_lumped = TransientPropagator(lumped.generator).transient_batch(
            lumped.initial_distribution[None, :],
            times,
            epsilon=1e-12,
            projection=_indicator(lumped.n_states, lumped.empty_states),
        )
        assert np.abs(cdf_full.values - cdf_lumped.values).max() <= 1e-10

    @settings(max_examples=8, deadline=None)
    @given(
        n_batteries=st.integers(min_value=2, max_value=3),
        levels=st.integers(min_value=2, max_value=3),
        policy=st.sampled_from(["static-split", "best-of"]),
        failures=st.integers(min_value=1, max_value=3),
        c=st.sampled_from([0.625, 1.0]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_lumped_cdf_matches_unlumped_on_random_banks(
        self, n_batteries, levels, policy, failures, c, seed
    ):
        """Property: the quotient's lifetime CDF equals the full chain's."""
        rng = np.random.default_rng(seed)
        battery = KiBaMParameters(capacity=float(rng.uniform(30.0, 60.0)), c=c, k=1e-3)
        system = MultiBatterySystem(
            workload=busy_idle_workload(),
            batteries=(battery,) * n_batteries,
            policy=policy,
            failures_to_die=min(failures, n_batteries),
        )
        delta = battery.available_capacity / levels
        times = np.linspace(0.0, float(rng.uniform(2000.0, 6000.0)), 9)
        full = system.discretize(delta, backend="assembled")
        lumped = system.discretize(delta, backend="lumped")
        cdf_full = TransientPropagator(full.generator, validate=False).transient_batch(
            full.initial_distribution[None, :],
            times,
            epsilon=1e-12,
            projection=_indicator(full.n_states, full.empty_states),
        )
        cdf_lumped = TransientPropagator(lumped.generator).transient_batch(
            lumped.initial_distribution[None, :],
            times,
            epsilon=1e-12,
            projection=_indicator(lumped.n_states, lumped.empty_states),
        )
        assert np.abs(cdf_full.values - cdf_lumped.values).max() <= 1e-10

    @settings(max_examples=10, deadline=None)
    @given(
        n_batteries=st.integers(min_value=2, max_value=3),
        levels=st.integers(min_value=2, max_value=4),
        policy=st.sampled_from(["static-split", "best-of"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_lumped_generator_aggregates_the_full_chain(
        self, n_batteries, levels, policy, seed
    ):
        """Property: lumped transient marginals match the full chain.

        Random uniformisation-free check: one explicit Euler step of the
        Kolmogorov equations on both chains, compared through the
        failed-state mass (the quantity every solver projects on).
        """
        rng = np.random.default_rng(seed)
        battery = KiBaMParameters(capacity=float(rng.uniform(30.0, 60.0)), c=0.625, k=1e-3)
        system = MultiBatterySystem(
            workload=busy_idle_workload(),
            batteries=(battery,) * n_batteries,
            policy=policy,
            failures_to_die=int(rng.integers(1, n_batteries + 1)),
        )
        delta = battery.available_capacity / levels
        full = system.discretize(delta, backend="assembled")
        lumped = system.discretize(delta, backend="lumped")
        step = 0.5 / max(full.uniformization_rate, 1e-9)
        pi_full = full.initial_distribution
        pi_lumped = lumped.initial_distribution
        for _ in range(3):
            pi_full = pi_full + step * (pi_full @ full.generator)
            pi_lumped = pi_lumped + step * (pi_lumped @ lumped.generator)
        assert full.empty_probability(pi_full) == pytest.approx(
            lumped.empty_probability(pi_lumped), abs=1e-12
        )

    def test_lumping_rejects_asymmetric_banks(self):
        battery = KiBaMParameters(capacity=60.0, c=0.625, k=1e-3)
        other = KiBaMParameters(capacity=80.0, c=0.625, k=1e-3)
        workload = busy_idle_workload()
        heterogeneous = MultiBatterySystem(
            workload=workload, batteries=(battery, other), policy="static-split",
            failures_to_die=1,
        )
        skewed = MultiBatterySystem(
            workload=workload, batteries=(battery, battery),
            policy=get_policy("static-split", weights=(0.75, 0.25)), failures_to_die=1,
        )
        clocked = MultiBatterySystem(
            workload=workload, batteries=(battery, battery), policy="round-robin",
            failures_to_die=1,
        )
        single = MultiBatterySystem(
            workload=workload, batteries=(battery,), policy="static-split",
            failures_to_die=1,
        )
        for system in (heterogeneous, skewed, clocked, single):
            assert not system.lumpable
            with pytest.raises(ValueError):
                discretize_lumped(system, battery.available_capacity / 4.0)
        symmetric = MultiBatterySystem(
            workload=workload, batteries=(battery, battery), policy="best-of",
            failures_to_die=1,
        )
        assert symmetric.lumpable


# ----------------------------------------------------------------------
# Engine threading: backend resolution, caching, fingerprints.
# ----------------------------------------------------------------------
class TestBackendDispatch:
    def _problem(self, n_batteries=2, levels=6, policy="static-split", **kwargs):
        battery = KiBaMParameters(capacity=60.0, c=0.625, k=1e-3)
        return MultiBatteryProblem(
            workload=busy_idle_workload(),
            batteries=(battery,) * n_batteries,
            times=np.linspace(0.0, 8000.0, 33),
            delta=battery.available_capacity / levels,
            policy=policy,
            failures_to_die=1,
            **kwargs,
        )

    def test_auto_backend_resolution(self):
        # Identical bank + symmetric policy: lumped.
        assert self._problem().resolved_backend() == "lumped"
        # Phase-clocked policy breaks the symmetry: small chain assembles.
        clocked = self._problem(policy="round-robin")
        assert clocked.resolved_backend() == "assembled"
        # Beyond the assembled budget, non-lumpable banks go matrix-free.
        huge = self._problem(n_batteries=3, levels=24, policy="round-robin")
        assert huge.estimated_mrm_states() > 200_000
        assert huge.resolved_backend() == "matrix-free"
        # Explicit pins are honoured.
        assert self._problem(backend="matrix-free").resolved_backend() == "matrix-free"
        with pytest.raises(ValueError):
            self._problem(backend="nonsense")

    def test_choose_method_uses_backend_states(self):
        # A bank whose raw product space exceeds the MRM budget stays on
        # the Markovian approximation when lumping shrinks it enough.
        lumped = self._problem(levels=24)
        assert lumped.estimated_mrm_states() > 200_000
        assert lumped.resolved_backend() == "lumped"
        assert lumped.estimated_backend_states() < 200_000
        assert choose_method(lumped) == "mrm-uniformization"
        # Matrix-free banks get the larger budget...
        clocked = self._problem(levels=24, policy="round-robin")
        assert clocked.resolved_backend() == "matrix-free"
        assert 200_000 < clocked.estimated_backend_states() <= 2_000_000
        assert choose_method(clocked) == "mrm-uniformization"
        # ...but beyond it the dispatch still falls back to simulation.
        vast = self._problem(levels=64, policy="round-robin")
        assert vast.estimated_backend_states() > 2_000_000
        assert choose_method(vast) == "monte-carlo"
        # A lowered MRM budget re-routes mid-size banks through the
        # matrix-free budget instead of dropping them to Monte-Carlo: the
        # dispatcher's budget doubles as the assembled-backend threshold.
        small = self._problem(levels=8, policy="round-robin")
        assert small.estimated_mrm_states() < 200_000
        assert choose_method(small, max_mrm_states=1_000) == "mrm-uniformization"

    def test_backends_agree_through_the_engine(self):
        workspace = SolveWorkspace()
        results = {}
        for backend in ("assembled", "matrix-free", "lumped"):
            result = solve_lifetime(
                self._problem(backend=backend),
                "mrm-uniformization",
                workspace=workspace,
            )
            assert result.diagnostics["backend"] == backend
            results[backend] = np.asarray(result.distribution.probabilities)
        np.testing.assert_allclose(
            results["matrix-free"], results["assembled"], atol=1e-10
        )
        np.testing.assert_allclose(results["lumped"], results["assembled"], atol=1e-10)
        # Three backends, three distinct chain builds in the workspace.
        assert workspace.builds == 3
        # The lumped chain is the smallest build.
        sizes = {key[-1]: chain.n_states for key, chain in workspace.chains.items()}
        assert sizes[("backend", "lumped")] < sizes[("backend", "assembled")]

    def test_merge_keys_and_fingerprints(self):
        pinned_assembled = self._problem(backend="assembled")
        pinned_operator = self._problem(backend="matrix-free")
        # Different backends never share a blocked solve...
        assert chain_merge_key(pinned_assembled) != chain_merge_key(pinned_operator)
        # ...but the chain key and the sweep fingerprint ignore the
        # backend, so cached results are served across backends.
        assert pinned_assembled.chain_key() == pinned_operator.chain_key()
        assert scenario_fingerprint(
            pinned_assembled, "mrm-uniformization"
        ) == scenario_fingerprint(pinned_operator, "mrm-uniformization")

    def test_scenario_batch_solves_mixed_backends(self):
        problems = [
            self._problem(backend="assembled").with_label("assembled"),
            self._problem(backend="lumped").with_label("lumped"),
        ]
        outcome = ScenarioBatch(problems).run("mrm-uniformization")
        cdfs = [np.asarray(r.distribution.probabilities) for r in outcome]
        np.testing.assert_allclose(cdfs[0], cdfs[1], atol=1e-10)
        assert [r.diagnostics["backend"] for r in outcome] == ["assembled", "lumped"]


def _indicator(n_states: int, states: np.ndarray) -> np.ndarray:
    vector = np.zeros(n_states)
    vector[states] = 1.0
    return vector


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
