"""Tests for the analysis containers, comparison metrics and reports."""

import warnings

import numpy as np
import pytest

from repro.analysis.comparison import crossing_time, kolmogorov_distance, stochastically_dominates
from repro.analysis.convergence import delta_convergence_study
from repro.analysis.distribution import (
    IncompleteDistributionWarning,
    LifetimeDistribution,
)
from repro.analysis.report import format_series, format_table


def make_curve(times, probabilities, label=""):
    return LifetimeDistribution(
        times=np.asarray(times, dtype=float),
        probabilities=np.asarray(probabilities, dtype=float),
        label=label,
    )


class TestLifetimeDistribution:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_curve([1.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            make_curve([1.0, 2.0], [0.0, 1.5])
        with pytest.raises(ValueError):
            make_curve([1.0, 2.0], [0.0])

    def test_interpolation_and_clamping(self):
        curve = make_curve([10.0, 20.0], [0.2, 0.8])
        assert curve.probability_empty_at(15.0) == pytest.approx(0.5)
        assert curve.probability_empty_at(0.0) == pytest.approx(0.2)
        assert curve.probability_empty_at(100.0) == pytest.approx(0.8)

    def test_quantile(self):
        curve = make_curve([10.0, 20.0, 30.0], [0.1, 0.6, 1.0])
        assert curve.quantile(0.5) == 20.0
        assert curve.quantile(1.0) == 30.0
        with pytest.raises(ValueError):
            make_curve([10.0, 20.0], [0.1, 0.2]).quantile(0.9)

    def test_mean_lifetime_of_uniform_distribution(self):
        # CDF of a Uniform(0, 100) lifetime sampled densely.
        times = np.linspace(1.0, 100.0, 200)
        curve = make_curve(times, times / 100.0)
        assert curve.mean_lifetime() == pytest.approx(50.0, rel=0.02)

    def test_complete_curve_mean_is_silent(self):
        curve = make_curve([1.0, 2.0, 3.0], [0.2, 0.8, 1.0])
        assert curve.final_mass == 1.0
        assert curve.is_complete()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # Trapezoid of 1 - F over [0, 3]: 0.9 + 0.5 + 0.1.
            assert curve.mean_lifetime() == pytest.approx(1.5)

    def test_truncated_curve_mean_warns_with_achieved_mass(self):
        curve = make_curve([1.0, 2.0, 3.0], [0.1, 0.3, 0.6])
        assert not curve.is_complete()
        with pytest.warns(IncompleteDistributionWarning, match="0.6000"):
            mean = curve.mean_lifetime()
        # The warned value is still returned (a lower bound).
        assert mean > 0

    def test_truncated_curve_mean_strict_raises(self):
        curve = make_curve([1.0, 2.0], [0.1, 0.4])
        with pytest.raises(ValueError, match="0.4000"):
            curve.mean_lifetime(strict=True)

    def test_truncated_quantile_error_names_achieved_mass(self):
        curve = make_curve([10.0, 20.0], [0.1, 0.2])
        with pytest.raises(ValueError, match="0.2000"):
            curve.quantile(0.9)

    def test_near_complete_curve_within_tolerance(self):
        # 0.9995 is within the default 1e-3 tolerance of a complete CDF.
        curve = make_curve([1.0, 2.0], [0.5, 0.9995])
        assert curve.is_complete()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            curve.mean_lifetime()

    def test_max_difference_and_relabel(self):
        first = make_curve([0.0, 10.0], [0.0, 1.0], label="a")
        second = make_curve([0.0, 10.0], [0.0, 0.5], label="b")
        assert first.max_difference(second) == pytest.approx(0.5)
        assert first.relabel("new").label == "new"

    def test_no_overlap_rejected(self):
        first = make_curve([0.0, 1.0], [0.0, 1.0])
        second = make_curve([5.0, 6.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            first.max_difference(second)

    def test_to_rows(self):
        curve = make_curve([1.0, 2.0], [0.25, 0.75])
        assert curve.to_rows() == [(1.0, 0.25), (2.0, 0.75)]
        rows = curve.to_rows([1.5])
        assert rows[0][1] == pytest.approx(0.5)


class TestComparison:
    def test_kolmogorov_distance_symmetry(self):
        first = make_curve([0.0, 5.0, 10.0], [0.0, 0.6, 1.0])
        second = make_curve([0.0, 5.0, 10.0], [0.0, 0.4, 1.0])
        assert kolmogorov_distance(first, second) == pytest.approx(0.2)
        assert kolmogorov_distance(second, first) == pytest.approx(0.2)

    def test_stochastic_dominance(self):
        shorter = make_curve([0.0, 5.0, 10.0], [0.0, 0.8, 1.0])
        longer = make_curve([0.0, 5.0, 10.0], [0.0, 0.5, 0.9])
        assert stochastically_dominates(longer, shorter)
        assert not stochastically_dominates(shorter, longer)

    def test_crossing_time(self):
        curve = make_curve([0.0, 5.0, 10.0], [0.0, 0.5, 1.0], label="x")
        assert crossing_time(curve, 0.5) == 5.0


class TestConvergence:
    def test_study_orders_and_reports(self):
        reference = make_curve([0.0, 10.0], [0.0, 1.0], label="ref")

        def solver(delta):
            # A fake solver whose error is proportional to delta.
            return make_curve([0.0, 10.0], [min(delta / 100.0, 1.0), 1.0], label=f"d{delta}")

        study = delta_convergence_study(solver, [40.0, 20.0, 10.0], reference)
        assert study.distances == pytest.approx((0.4, 0.2, 0.1))
        assert study.is_monotonically_improving()
        assert study.best_delta() == 10.0
        assert study.rows()[0] == (40.0, pytest.approx(0.4))

    def test_empty_deltas_rejected(self):
        reference = make_curve([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            delta_convergence_study(lambda d: reference, [], reference)


class TestReport:
    def test_format_table_alignment_and_values(self):
        text = format_table(["name", "value"], [["alpha", 1.5], ["b", 1200.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "alpha" in lines[2]
        assert "1200" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_format_series(self):
        curves = [
            make_curve([0.0, 10.0], [0.0, 1.0], label="first"),
            make_curve([0.0, 10.0], [0.0, 0.5], label="second"),
        ]
        text = format_series(curves, [0.0, 5.0, 10.0], time_label="t", time_scale=1.0)
        assert "first" in text and "second" in text
        assert len(text.splitlines()) == 5
