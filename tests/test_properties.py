"""Property-based tests (hypothesis) on core invariants across the library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.kibam import KineticBatteryModel
from repro.battery.parameters import KiBaMParameters
from repro.battery.profiles import SquareWaveLoad
from repro.core.discretization import discretize
from repro.core.kibamrm import KiBaMRM
from repro.markov.generator import validate_generator
from repro.markov.steady_state import steady_state_distribution
from repro.markov.uniformization import uniformized_transient
from repro.reward.occupation import occupation_time_distribution
from repro.workload.onoff import onoff_workload


@st.composite
def small_generators(draw):
    """Random irreducible-ish generators with 2--4 states."""
    n = draw(st.integers(min_value=2, max_value=4))
    rates = draw(
        st.lists(
            st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=n, max_size=n),
            min_size=n,
            max_size=n,
        )
    )
    matrix = np.asarray(rates, dtype=float)
    np.fill_diagonal(matrix, 0.0)
    # Guarantee a cycle so that the chain has a unique stationary distribution.
    for i in range(n):
        matrix[i, (i + 1) % n] += 0.5
    np.fill_diagonal(matrix, -matrix.sum(axis=1))
    return matrix


class TestMarkovProperties:
    @given(generator=small_generators(), time=st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=30, deadline=None)
    def test_transient_distribution_is_stochastic(self, generator, time):
        alpha = np.zeros(generator.shape[0])
        alpha[0] = 1.0
        result = uniformized_transient(generator, alpha, [time])
        distribution = result.distributions[0]
        assert np.all(distribution >= -1e-10)
        assert distribution.sum() == pytest.approx(1.0, abs=1e-7)

    @given(generator=small_generators())
    @settings(max_examples=30, deadline=None)
    def test_steady_state_is_fixed_point_of_transient(self, generator):
        pi = steady_state_distribution(generator)
        later = uniformized_transient(generator, pi, [3.0]).distributions[0]
        assert np.allclose(later, pi, atol=1e-6)

    @given(
        generator=small_generators(),
        time=st.floats(min_value=0.1, max_value=10.0),
        fraction=st.floats(min_value=0.0, max_value=0.99),
    )
    @settings(max_examples=25, deadline=None)
    def test_occupation_probability_in_unit_interval_and_monotone_in_x(
        self, generator, time, fraction
    ):
        alpha = np.zeros(generator.shape[0])
        alpha[0] = 1.0
        high = [0]
        lower_x = occupation_time_distribution(generator, alpha, high, time, [fraction])[0]
        higher_x = occupation_time_distribution(
            generator, alpha, high, time, [min(fraction + 0.2, 1.0)]
        )[0]
        assert 0.0 <= higher_x <= lower_x <= 1.0


class TestKiBaMProperties:
    @given(
        c=st.floats(min_value=0.3, max_value=1.0),
        k=st.floats(min_value=0.0, max_value=1e-3),
        frequency=st.floats(min_value=0.001, max_value=1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_kibam_delivers_at_most_its_capacity(self, c, k, frequency):
        capacity = 1000.0
        model = KineticBatteryModel(KiBaMParameters(capacity=capacity, c=c, k=k))
        profile = SquareWaveLoad(0.96, frequency=frequency)
        lifetime = model.lifetime(profile)
        assert lifetime is not None
        delivered = profile.mean_current(lifetime) * lifetime
        assert delivered <= capacity + 1e-6
        # ... and at least the available-charge well.
        assert delivered >= c * capacity - 1e-6

    @given(
        c=st.floats(min_value=0.3, max_value=0.95),
        k=st.floats(min_value=1e-6, max_value=1e-3),
        drain=st.floats(min_value=10.0, max_value=400.0),
        rest=st.floats(min_value=1.0, max_value=5000.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_resting_never_reduces_available_charge(self, c, k, drain, rest):
        model = KineticBatteryModel(KiBaMParameters(capacity=1000.0, c=c, k=k))
        drained = model.step(model.initial_state(), current=0.9, duration=drain)
        rested = model.step(drained, current=0.0, duration=rest)
        assert rested.available >= drained.available - 1e-9
        assert rested.total == pytest.approx(drained.total, rel=1e-9)


class TestDiscretizationProperties:
    @given(
        delta=st.sampled_from([10.0, 20.0, 25.0, 50.0]),
        c=st.sampled_from([0.5, 0.625, 1.0]),
    )
    @settings(max_examples=12, deadline=None)
    def test_expanded_generator_is_valid_and_absorbing_where_expected(self, delta, c):
        battery = KiBaMParameters(capacity=200.0, c=c, k=1e-3 if c < 1.0 else 0.0)
        model = KiBaMRM(workload=onoff_workload(frequency=0.05), battery=battery)
        discretized = discretize(model, delta=delta)
        validate_generator(discretized.generator)
        diagonal = discretized.generator.diagonal()
        assert np.allclose(diagonal[discretized.empty_states], 0.0)
        assert discretized.initial_distribution.sum() == pytest.approx(1.0)
