"""Tests for the lifetime-distribution solver and the convenience builder."""

import numpy as np
import pytest

from repro.battery.parameters import KiBaMParameters
from repro.core.builder import compute_lifetime_distribution, default_time_grid
from repro.core.kibamrm import KiBaMRM
from repro.core.lifetime import LifetimeSolver, lifetime_distribution
from repro.reward.occupation import two_level_lifetime_cdf
from repro.workload.onoff import onoff_workload
from repro.workload.simple import simple_workload


@pytest.fixture
def fast_onoff_model():
    """A small single-well battery driven by a slow on/off workload.

    The short lifetime keeps the uniformisation runs fast, so this fixture is
    used by most solver tests.
    """
    workload = onoff_workload(frequency=0.01, erlang_k=1)
    battery = KiBaMParameters(capacity=600.0, c=1.0, k=0.0)
    return KiBaMRM(workload=workload, battery=battery)


class TestLifetimeSolver:
    def test_cdf_is_monotone_and_bounded(self, fast_onoff_model):
        times = np.linspace(200.0, 4000.0, 20)
        curve = LifetimeSolver(fast_onoff_model, delta=10.0).solve(times)
        assert np.all(curve.probabilities >= 0.0)
        assert np.all(curve.probabilities <= 1.0)
        assert np.all(np.diff(curve.probabilities) >= -1e-9)

    def test_probability_negligible_before_fastest_possible_drain(self, fast_onoff_model):
        # Draining 600 As at 0.96 A takes 625 s even without idle periods; the
        # phase-type approximation smears a little mass below that bound, but
        # it must stay negligible well before it.
        curve = LifetimeSolver(fast_onoff_model, delta=10.0).solve([300.0, 600.0])
        assert curve.probabilities[0] < 1e-6
        assert curve.probabilities[1] < 0.02

    def test_probability_approaches_one_for_long_horizons(self, fast_onoff_model):
        curve = LifetimeSolver(fast_onoff_model, delta=10.0).solve([20000.0])
        assert curve.probabilities[0] > 0.99

    def test_finer_delta_approaches_exact_solution(self, fast_onoff_model):
        workload = fast_onoff_model.workload
        times = np.linspace(800.0, 3000.0, 12)
        exact = two_level_lifetime_cdf(
            workload.generator,
            workload.initial_distribution,
            workload.currents,
            fast_onoff_model.battery.capacity,
            times,
        )
        errors = []
        for delta in (50.0, 25.0, 10.0):
            curve = LifetimeSolver(fast_onoff_model, delta=delta).solve(times)
            errors.append(float(np.max(np.abs(curve.probabilities - exact))))
        assert errors[0] > errors[-1]
        assert errors[-1] < 0.12

    def test_metadata_is_recorded(self, fast_onoff_model):
        solver = LifetimeSolver(fast_onoff_model, delta=20.0)
        curve = solver.solve([1000.0, 2000.0])
        assert curve.metadata["method"] == "markovian-approximation"
        assert curve.metadata["delta"] == 20.0
        assert curve.metadata["n_states"] == solver.n_states
        assert curve.metadata["iterations"] > 0

    def test_mean_lifetime_close_to_expected_consumption_time(self, fast_onoff_model):
        # The mean current is 0.48 A, so the 600 As battery lasts roughly
        # 1250 s (plus phase-type spread).
        mean = LifetimeSolver(fast_onoff_model, delta=10.0).mean_lifetime(horizon=6000.0)
        assert mean == pytest.approx(1250.0, rel=0.15)

    def test_one_shot_wrapper_matches_solver(self, fast_onoff_model):
        times = [1000.0, 1500.0]
        via_solver = LifetimeSolver(fast_onoff_model, delta=20.0).solve(times)
        via_wrapper = lifetime_distribution(fast_onoff_model, times, delta=20.0)
        assert np.allclose(via_solver.probabilities, via_wrapper.probabilities)

    def test_two_well_solver_runs_and_is_slower_to_empty(self):
        workload = onoff_workload(frequency=0.01, erlang_k=1)
        partial = KiBaMRM(
            workload=workload, battery=KiBaMParameters(capacity=600.0, c=0.625, k=1e-4)
        )
        only_available = KiBaMRM(
            workload=workload, battery=KiBaMParameters(capacity=375.0, c=1.0, k=0.0)
        )
        times = np.linspace(400.0, 2500.0, 8)
        partial_curve = LifetimeSolver(partial, delta=12.5).solve(times)
        available_curve = LifetimeSolver(only_available, delta=12.5).solve(times)
        # With the bound charge feeding the available well the battery lasts
        # longer than with the available part alone (Figure 9 ordering).
        assert np.all(partial_curve.probabilities <= available_curve.probabilities + 0.02)


class TestBuilder:
    def test_default_time_grid_spans_ideal_lifetime(self, paper_battery):
        workload = simple_workload()
        grid = default_time_grid(workload, paper_battery)
        ideal = paper_battery.capacity / workload.mean_current()
        assert grid[0] < ideal < grid[-1]

    def test_default_time_grid_rejects_zero_current(self, paper_battery):
        workload = simple_workload(idle_current_ma=0.0, send_current_ma=0.0, sleep_current_ma=0.0)
        with pytest.raises(ValueError):
            default_time_grid(workload, paper_battery)

    def test_compute_lifetime_distribution_end_to_end(self):
        workload = onoff_workload(frequency=0.01)
        battery = KiBaMParameters(capacity=600.0, c=1.0, k=0.0)
        curve = compute_lifetime_distribution(workload, battery, delta=20.0, label="quick")
        assert curve.label == "quick"
        assert curve.probabilities[-1] > 0.9
        assert curve.n_points == 120
