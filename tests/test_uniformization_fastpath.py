"""Tests for the incremental uniformisation fast path.

Covers the three guarantees of the rebuilt transient core:

* the incremental (segment-chained) mode agrees with the dense matrix
  exponential and with the classical single-pass sweep on small chains,
* chaining ``pi(t_{j-1}) -> pi(t_j)`` over an arbitrary time grid is
  equivalent to propagating every point from zero (property-based, over
  random grids with duplicates and unsorted order), and
* steady-state detection on absorbing chains collapses long tails to a
  closed-form completion without losing accuracy, and reports the savings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.transient import expm_transient
from repro.markov.uniformization import TransientPropagator, uniformized_transient

#: A small irreducible generator used throughout this module.
GENERATOR = np.array(
    [
        [-2.0, 1.5, 0.5],
        [1.0, -3.0, 2.0],
        [0.0, 2.5, -2.5],
    ]
)

#: An absorbing birth--death-style generator (state 3 is absorbing).
ABSORBING = np.array(
    [
        [-1.2, 1.2, 0.0, 0.0],
        [0.3, -1.3, 1.0, 0.0],
        [0.0, 0.4, -1.9, 1.5],
        [0.0, 0.0, 0.0, 0.0],
    ]
)


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("generator", [GENERATOR, ABSORBING])
    def test_matches_matrix_exponential(self, generator):
        alpha = np.zeros(generator.shape[0])
        alpha[0] = 1.0
        times = [0.0, 0.1, 0.4, 1.3, 2.9, 7.0]
        result = uniformized_transient(generator, alpha, times, mode="incremental")
        for index, time in enumerate(times):
            exact = expm_transient(generator, alpha, time)
            assert np.allclose(result.distributions[index], exact, atol=1e-9)

    def test_unsorted_duplicate_times_keep_caller_order(self):
        alpha = np.array([1.0, 0.0, 0.0])
        times = [2.5, 0.0, 0.7, 2.5, 0.7]
        result = uniformized_transient(GENERATOR, alpha, times, mode="incremental")
        assert np.array_equal(result.times, np.asarray(times))
        for index, time in enumerate(times):
            exact = expm_transient(GENERATOR, alpha, time)
            assert np.allclose(result.distributions[index], exact, atol=1e-9)
        # Duplicate times share one window and produce identical rows.
        assert np.array_equal(result.distributions[0], result.distributions[3])
        assert np.array_equal(result.distributions[2], result.distributions[4])

    def test_modes_agree_with_projection_vector_and_matrix(self):
        rng = np.random.default_rng(42)
        propagator = TransientPropagator(GENERATOR)
        alphas = rng.dirichlet(np.ones(3), size=4)
        times = np.array([0.2, 0.9, 1.7, 3.1])
        for projection in (None, rng.random(3), rng.random((3, 2))):
            incremental = propagator.transient_batch(
                alphas, times, projection=projection, mode="incremental"
            )
            single = propagator.transient_batch(
                alphas, times, projection=projection, mode="single-pass"
            )
            assert incremental.values.shape == single.values.shape
            assert np.allclose(incremental.values, single.values, atol=1e-9)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="transient mode"):
            uniformized_transient(GENERATOR, [1.0, 0.0, 0.0], [1.0], mode="bogus")

    def test_single_pass_still_skips_projection_before_first_window(self):
        # A late single time point exercises the skip-before-left fast path;
        # the result must be unaffected.
        alpha = np.array([0.0, 1.0, 0.0])
        late = uniformized_transient(
            GENERATOR, alpha, [40.0], mode="single-pass"
        ).distributions[0]
        exact = expm_transient(GENERATOR, alpha, 40.0)
        assert np.allclose(late, exact, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=12.0, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=10,
    ),
    start=st.integers(min_value=0, max_value=2),
)
def test_incremental_matches_from_zero_propagation(times, start):
    """Chaining segments over any grid == propagating each point from zero."""
    alpha = np.zeros(3)
    alpha[start] = 1.0
    propagator = TransientPropagator(GENERATOR)
    incremental = propagator.transient(alpha, times, mode="incremental")
    from_zero = propagator.transient(alpha, times, mode="single-pass")
    assert np.allclose(
        incremental.distributions, from_zero.distributions, atol=1e-9
    )
    # Both report the caller's grid verbatim.
    assert np.array_equal(incremental.times, np.asarray(times, dtype=float))


class TestSteadyStateDetection:
    def test_absorbing_chain_long_tail_is_collapsed(self):
        """Regression: a long post-absorption tail must be nearly free."""
        alpha = np.array([1.0, 0.0, 0.0, 0.0])
        # 64 points stretching far past absorption (the chain is absorbed
        # after a few tens of time units; the grid runs to t = 1600).
        times = np.linspace(0.0, 1600.0, 64)
        propagator = TransientPropagator(ABSORBING)
        fast = propagator.transient(alpha, times, mode="incremental")
        baseline = propagator.transient(alpha, times, mode="single-pass")

        assert fast.steady_state_time is not None
        assert fast.steady_state_time < times[-1] / 4
        assert fast.steady_state_iteration is not None
        assert fast.iterations_saved > 0
        # The detection collapses the vast majority of the products the
        # baseline sweep has to perform.
        assert fast.iterations < baseline.iterations / 3
        assert np.allclose(fast.distributions, baseline.distributions, atol=1e-8)
        # At the horizon everything is absorbed.
        assert fast.distributions[-1, -1] == pytest.approx(1.0, abs=1e-8)

    def test_detection_can_be_disabled(self):
        alpha = np.array([1.0, 0.0, 0.0, 0.0])
        times = np.linspace(0.0, 50.0, 16)
        propagator = TransientPropagator(ABSORBING)
        undetected = propagator.transient(
            alpha, times, mode="incremental", steady_state_tol=0.0
        )
        assert undetected.steady_state_time is None
        assert undetected.iterations_saved == 0
        detected = propagator.transient(alpha, times, mode="incremental")
        assert np.allclose(
            undetected.distributions, detected.distributions, atol=1e-8
        )

    def test_fully_absorbing_chain_detects_immediately(self):
        # All rates zero: P = I, so the very first product finds the
        # distribution invariant.
        generator = np.zeros((2, 2))
        result = uniformized_transient(
            generator, [0.25, 0.75], [1.0, 10.0, 100.0], mode="incremental"
        )
        assert np.allclose(result.distributions, [0.25, 0.75])
        assert result.steady_state_time == 1.0

    def test_truncation_error_is_cumulative_and_bounded(self):
        alpha = np.array([1.0, 0.0, 0.0])
        epsilon = 1e-8
        result = uniformized_transient(
            GENERATOR, alpha, np.linspace(0.5, 20.0, 40), epsilon=epsilon
        )
        assert np.all(result.truncation_error >= 0.0)
        assert np.all(result.truncation_error <= epsilon)
        assert np.all(np.diff(result.truncation_error) >= 0.0)


class TestEngineThreading:
    """The fast path and its diagnostics flow through the engine layers."""

    def _problem(self, transient_mode="incremental"):
        from repro.battery.parameters import KiBaMParameters
        from repro.engine import LifetimeProblem
        from repro.workload.onoff import onoff_workload

        return LifetimeProblem(
            workload=onoff_workload(frequency=1.0, erlang_k=1),
            battery=KiBaMParameters(capacity=60.0, c=0.625, k=1e-3),
            times=np.linspace(50.0, 2000.0, 40),
            delta=2.0,
            transient_mode=transient_mode,
        )

    def test_solver_reports_fast_path_diagnostics(self):
        from repro.engine import solve_lifetime

        result = solve_lifetime(self._problem(), "mrm-uniformization")
        assert result.diagnostics["transient_mode"] == "incremental"
        assert result.diagnostics["n_segments"] == 40
        assert result.diagnostics["iterations_saved"] >= 0
        assert "steady_state_time" in result.diagnostics

    def test_modes_agree_through_the_engine(self):
        from repro.engine import solve_lifetime

        fast = solve_lifetime(self._problem("incremental"), "mrm-uniformization")
        slow = solve_lifetime(self._problem("single-pass"), "mrm-uniformization")
        assert slow.diagnostics["transient_mode"] == "single-pass"
        assert np.allclose(
            fast.distribution.probabilities,
            slow.distribution.probabilities,
            atol=1e-8,
        )

    def test_mode_is_excluded_from_sweep_fingerprints(self):
        from repro.engine.sweep import scenario_fingerprint

        problem = self._problem("incremental")
        assert scenario_fingerprint(problem, "mrm-uniformization") == (
            scenario_fingerprint(
                problem.with_transient_mode("single-pass"), "mrm-uniformization"
            )
        )

    def test_invalid_mode_rejected_by_problem(self):
        with pytest.raises(ValueError, match="transient mode"):
            self._problem("bogus")


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
