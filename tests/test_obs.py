"""Tests of the ``repro.obs`` observability layer.

The tracer (span nesting, parent links, clock injection, the
``REPRO_TRACE`` knob, worker-span ingestion and JSONL export), the
metrics registry, the events bus, the ``tools/repro_trace.py`` report
functions, and the end-to-end sweep integration: a traced sweep's
diagnostics carry the new schema keys, and a crash-injected sweep's
exported trace reconstructs the retry timeline with driver and worker
spans in one correctly-parented tree.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.battery.parameters import KiBaMParameters
from repro.checking.fingerprints import audit_fingerprint_registry
from repro.checking.protocols import TraceSink
from repro.engine import (
    ExecutionPolicy,
    RunOptions,
    SweepCache,
    SweepSpec,
    override_faults,
    run_sweep,
)
from repro.engine.diagnostics import validate_diagnostics
from tools.repro_trace import load_spans, phase_breakdown, render_report, sweep_timeline

TIMES = np.linspace(10.0, 400.0, 8)

SPEC = SweepSpec(
    workloads=["simple"],
    batteries=[KiBaMParameters(capacity=60.0 + 20.0 * i, c=0.625, k=1e-3) for i in range(3)],
    times=TIMES,
    deltas=(10.0,),
    methods=["mrm-uniformization"],
)

FAST = ExecutionPolicy(backoff_base=0.0)


# ----------------------------------------------------------------------
# tracer core
# ----------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_and_carry_parent_links(self) -> None:
        tracer = obs.Tracer(mode="full")
        with tracer.span("outer") as outer_id:
            with tracer.span("inner", index=3) as inner_id:
                pass
        inner, outer = tracer.spans()
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.span_id == inner_id and outer.span_id == outer_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.attrs == {"index": 3}

    def test_injected_clock_times_the_spans(self) -> None:
        ticks = iter([10.0, 11.5])
        tracer = obs.Tracer(mode="summary", clock=lambda: next(ticks))
        with tracer.span("timed"):
            pass
        (timed,) = tracer.spans()
        assert (timed.start, timed.end) == (10.0, 11.5)
        assert timed.duration == pytest.approx(1.5)

    def test_span_ids_are_unique_across_tracers(self) -> None:
        first, second = obs.Tracer(), obs.Tracer()
        with first.span("a"), second.span("b"):
            pass
        ids = {item.span_id for item in first.spans() + second.spans()}
        assert len(ids) == 2

    def test_off_mode_tracer_is_rejected(self) -> None:
        with pytest.raises(ValueError, match="off"):
            obs.Tracer(mode="off")
        with pytest.raises(ValueError):
            obs.Tracer(mode="verbose")

    def test_record_registers_externally_timed_spans(self) -> None:
        tracer = obs.Tracer()
        span_id = tracer.record("attempt", start=5.0, end=7.0, task_id=2)
        (attempt,) = tracer.spans()
        assert attempt.span_id == span_id
        assert (attempt.start, attempt.end) == (5.0, 7.0)
        assert attempt.attrs == {"task_id": 2}

    def test_ingest_reparents_roots_and_rebases_times(self) -> None:
        worker = obs.Tracer(mode="full")
        with worker.span("chunk_solve"):
            with worker.span("group_solve"):
                pass
        records = [item.as_record() for item in worker.spans()]
        earliest = min(item.start for item in worker.spans())

        driver = obs.Tracer(mode="full")
        attempt = driver.record("chunk_attempt", start=100.0, end=104.0)
        adopted = driver.ingest(records, parent_id=attempt, align_start=100.0)
        assert adopted == 2
        by_name = {item.name: item for item in driver.spans()}
        # The worker's root is re-parented, internal links are kept.
        assert by_name["chunk_solve"].parent_id == attempt
        assert by_name["group_solve"].parent_id == by_name["chunk_solve"].span_id
        # Times are re-based onto the driver timeline.
        assert min(item.start for item in driver.spans()) == pytest.approx(100.0)
        original = {item["name"]: item for item in records}
        assert by_name["chunk_solve"].start == pytest.approx(
            original["chunk_solve"]["start"] - earliest + 100.0
        )

    def test_jsonl_sink_streams_finished_spans(self) -> None:
        stream = io.StringIO()
        sink = obs.JsonlTraceSink(stream)
        assert isinstance(sink, TraceSink)
        tracer = obs.Tracer(sink=sink)
        with tracer.span("streamed"):
            pass
        sink.flush()
        (line,) = stream.getvalue().strip().splitlines()
        assert json.loads(line)["name"] == "streamed"

    def test_export_jsonl_roundtrips_through_span_from_record(self, tmp_path) -> None:
        tracer = obs.Tracer()
        with tracer.span("a", label="x"):
            pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 1
        (record,) = [json.loads(line) for line in path.read_text().splitlines()]
        rebuilt = obs.span_from_record(record)
        assert rebuilt == tracer.spans()[0]


# ----------------------------------------------------------------------
# the REPRO_TRACE knob
# ----------------------------------------------------------------------


class TestTraceKnob:
    def test_unset_environment_means_off(self, monkeypatch) -> None:
        monkeypatch.delenv(obs.ENV_VAR, raising=False)
        assert obs.current_tracer() is None
        assert obs.trace_mode() == "off"

    def test_environment_enables_summary_and_full(self, monkeypatch) -> None:
        for mode in ("summary", "full"):
            monkeypatch.setenv(obs.ENV_VAR, mode)
            tracer = obs.current_tracer()
            assert tracer is not None and tracer.mode == mode
            assert obs.trace_mode() == mode

    def test_invalid_environment_value_raises(self, monkeypatch) -> None:
        monkeypatch.setenv(obs.ENV_VAR, "loud")
        with pytest.raises(ValueError, match="loud"):
            obs.current_tracer()

    def test_override_wins_over_environment(self, monkeypatch) -> None:
        monkeypatch.setenv(obs.ENV_VAR, "full")
        with obs.override_trace("summary") as tracer:
            assert obs.current_tracer() is tracer
            assert tracer is not None and tracer.mode == "summary"
        with obs.override_trace("off") as tracer:
            assert tracer is None
            assert obs.current_tracer() is None
        assert obs.current_tracer() is not None  # environment restored

    def test_detail_spans_only_record_in_full_mode(self) -> None:
        with obs.override_trace("summary") as tracer:
            with obs.span("phase"):
                with obs.detail_span("detail"):
                    pass
        assert tracer is not None
        assert [item.name for item in tracer.spans()] == ["phase"]
        with obs.override_trace("full") as tracer:
            with obs.span("phase"):
                with obs.detail_span("detail"):
                    pass
        assert tracer is not None
        assert [item.name for item in tracer.spans()] == ["detail", "phase"]

    def test_helpers_are_noops_when_off(self, monkeypatch) -> None:
        monkeypatch.delenv(obs.ENV_VAR, raising=False)
        with obs.span("ignored"):
            pass
        assert obs.record_span("ignored", start=0.0, end=1.0) is None
        assert obs.ingest_spans([], parent_id=None) == 0

    def test_override_scope_starts_without_a_parent(self) -> None:
        # The in-process "worker" of a serial sweep overrides the trace
        # inside the driver's sweep span; its spans must still be roots
        # so re-parenting under the chunk attempt can adopt them.
        with obs.override_trace("full") as driver:
            with obs.span("sweep"):
                with obs.override_trace("full") as worker:
                    with obs.span("chunk_solve"):
                        pass
        assert worker is not None and driver is not None
        (chunk_solve,) = worker.spans()
        assert chunk_solve.parent_id is None


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counters_gauges_histograms_snapshot(self) -> None:
        registry = obs.MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("depth").set(4.0)
        registry.histogram("latency").observe(0.002)
        registry.histogram("latency").observe(40.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 3}
        assert snapshot["gauges"] == {"depth": 4.0}
        histogram = snapshot["histograms"]["latency"]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(40.002)
        assert histogram["min"] == pytest.approx(0.002)
        assert histogram["max"] == pytest.approx(40.0)
        assert sum(histogram["buckets"].values()) == 2

    def test_counter_rejects_negative_increments(self) -> None:
        registry = obs.MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)

    def test_hot_path_helpers_need_an_installed_registry(self) -> None:
        assert obs.metrics_registry() is None
        obs.count("ignored")
        obs.observe("ignored", 1.0)
        obs.set_gauge("ignored", 1.0)
        with obs.override_metrics() as registry:
            obs.count("hits", 2)
            obs.observe("latency", 0.5)
            obs.set_gauge("depth", 3.0)
            assert obs.metrics_registry() is registry
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 2}
        assert snapshot["gauges"] == {"depth": 3.0}
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert obs.metrics_registry() is None

    def test_render_lists_every_metric(self) -> None:
        registry = obs.MetricsRegistry()
        registry.counter("hits").inc()
        registry.histogram("latency").observe(1.0)
        text = registry.render()
        assert text.startswith("-- obs metrics --")
        assert "hits" in text and "latency" in text


# ----------------------------------------------------------------------
# events bus
# ----------------------------------------------------------------------


class TestEvents:
    @pytest.fixture(autouse=True)
    def _isolated_bus(self, monkeypatch: pytest.MonkeyPatch) -> None:
        # The bus is process-global; other suites (the runner's --progress
        # wiring) may leave handlers behind that would see our test events.
        monkeypatch.setattr(obs.events, "_handlers", [])

    def test_emit_fans_out_in_registration_order(self) -> None:
        seen: list[tuple[str, object]] = []
        first = obs.events.subscribe(lambda event: seen.append(("first", event)))
        second = obs.events.subscribe(lambda event: seen.append(("second", event)))
        try:
            obs.events.emit("tick")
            assert seen == [("first", "tick"), ("second", "tick")]
            obs.events.unsubscribe(first)
            obs.events.emit("tock")
            assert seen[-1] == ("second", "tock")
        finally:
            obs.events.unsubscribe(first)
            obs.events.unsubscribe(second)

    def test_emit_without_handlers_is_a_noop(self) -> None:
        obs.events.emit("nobody-listens")


# ----------------------------------------------------------------------
# fingerprint exemption
# ----------------------------------------------------------------------


def test_trace_knob_is_fingerprint_exempt() -> None:
    # TRACE_EXEMPT declares SweepSpec.trace exempt and the audit enforces
    # it; a registry that still passes proves the declaration is live.
    from repro.checking.fingerprints import TRACE_EXEMPT

    assert TRACE_EXEMPT["SweepSpec"] == ("trace",)
    audit_fingerprint_registry()


# ----------------------------------------------------------------------
# sweep integration
# ----------------------------------------------------------------------


class TestSweepIntegration:
    def test_traced_sweep_diagnostics_carry_obs_keys(self) -> None:
        spec = SweepSpec(
            workloads=SPEC.workloads,
            batteries=SPEC.batteries,
            times=SPEC.times,
            deltas=SPEC.deltas,
            methods=SPEC.methods,
            trace="full",
        )
        with obs.override_metrics() as registry:
            result = run_sweep(spec, options=RunOptions(max_workers=1, execution=FAST))
        validate_diagnostics(result.diagnostics)
        assert result.diagnostics["trace_mode"] == "full"
        assert result.diagnostics["n_spans"] > 0
        metrics = result.diagnostics["metrics"]
        assert metrics == registry.snapshot()
        assert metrics["counters"]["solves.mrm-uniformization"] == 3
        assert "solve_seconds.mrm-uniformization" in metrics["histograms"]

    def test_untraced_sweep_reports_off_mode(self, monkeypatch) -> None:
        monkeypatch.delenv(obs.ENV_VAR, raising=False)
        result = run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST))
        validate_diagnostics(result.diagnostics)
        assert result.diagnostics["trace_mode"] == "off"
        assert "n_spans" not in result.diagnostics
        assert "metrics" not in result.diagnostics

    def test_crashed_sweep_trace_reconstructs_the_retry_timeline(self, tmp_path) -> None:
        cache = SweepCache(tmp_path / "cache")
        with obs.override_trace("full") as tracer:
            with override_faults("crash:max_attempt=1:match=C=80"):
                result = run_sweep(SPEC, options=RunOptions(max_workers=1, cache=cache, execution=ExecutionPolicy(backoff_base=0.001)))
            assert tracer is not None
            path = tmp_path / "trace.jsonl"
            tracer.export_jsonl(path)
        assert result.diagnostics["n_retries"] >= 1

        spans = load_spans(path)
        by_id = {item["span_id"]: item for item in spans}
        for item in spans:
            assert item["parent_id"] is None or item["parent_id"] in by_id
        for item in spans:
            if item["name"] == "chunk_solve":
                assert by_id[item["parent_id"]]["name"] == "chunk_attempt"
        assert sum(1 for item in spans if item["name"] == "checkpoint_write") == 3

        timeline = sweep_timeline(spans)
        (events,) = timeline.values()  # one chunk, retried under fresh ids
        statuses = [
            (event["kind"], event["status"], event["attempt"]) for event in events
        ]
        assert statuses[0] == ("chunk_attempt", "failed", 0)
        assert ("backoff", None, 1) in statuses
        assert statuses[-1][0] == "chunk_attempt" and statuses[-1][1] == "ok"
        final = events[-1]
        assert any(child["name"] == "chunk_solve" for child in final["children"])

        report = render_report(spans)
        assert "phase breakdown" in report and "sweep timeline" in report
        assert "failed" in report and "backoff" in report
        names = {entry["name"] for entry in phase_breakdown(spans)}
        assert {"sweep", "chunk_attempt", "chunk_solve", "checkpoint_write"} <= names

    def test_progress_eta_is_deterministic_under_a_fake_clock(self) -> None:
        # Satellite of the obs layer: the sweep's elapsed/ETA numbers read
        # the injectable obs clock, so a frozen clock yields frozen times.
        events = []
        with obs.override_clock(lambda: 1000.0):
            run_sweep(SPEC, options=RunOptions(max_workers=1, execution=FAST, progress=events.append))
        assert events, "progress events must be emitted"
        assert all(event.elapsed_seconds == 0.0 for event in events)
        assert events[-1].done == events[-1].total
        assert events[-1].eta_seconds == 0.0
        mid = [event for event in events if 0 < event.done < event.total]
        for event in mid:
            assert event.eta_seconds == 0.0  # 0 elapsed => 0 projected
