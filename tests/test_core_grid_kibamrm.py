"""Tests for the reward grid and the KiBaMRM definition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.parameters import KiBaMParameters
from repro.core.grid import RewardGrid
from repro.core.kibamrm import KiBaMRM
from repro.workload.onoff import onoff_workload
from repro.workload.simple import simple_workload


class TestRewardGrid:
    def test_level_counts_match_paper_example(self):
        # Figure 7 / Section 6.1: C = 7200 As, c = 1, Delta = 5 gives
        # 1441 levels and, with the 2-state workload, 2882 expanded states.
        grid = RewardGrid(delta=5.0, upper1=7200.0)
        assert grid.n_levels1 == 1441
        assert grid.n_levels2 == 1
        assert grid.n_expanded_states(2) == 2882

    def test_two_dimensional_level_counts(self):
        grid = RewardGrid(delta=25.0, upper1=4500.0, upper2=2700.0)
        assert grid.two_dimensional
        assert grid.n_levels1 == 181
        assert grid.n_levels2 == 109
        assert grid.n_cells == 181 * 109

    def test_level_of_interval_convention(self):
        grid = RewardGrid(delta=10.0, upper1=100.0)
        # Level j covers (j*Delta, (j+1)*Delta]: 10.0 belongs to level 0.
        assert grid.level_of(10.0) == 0
        assert grid.level_of(10.1) == 1
        assert grid.level_of(0.0) == 0
        assert grid.level_of(-5.0) == 0
        assert grid.level_of(100.0) == 9

    def test_level_of_rejects_values_above_bound(self):
        grid = RewardGrid(delta=10.0, upper1=100.0)
        with pytest.raises(ValueError):
            grid.level_of(101.0)

    def test_level_value_is_lower_edge(self):
        grid = RewardGrid(delta=10.0, upper1=100.0)
        assert grid.level_value(3) == pytest.approx(30.0)
        with pytest.raises(ValueError):
            grid.level_value(11)

    def test_flat_index_roundtrip(self):
        grid = RewardGrid(delta=10.0, upper1=50.0, upper2=30.0)
        for state in range(3):
            for level1 in range(grid.n_levels1):
                for level2 in range(grid.n_levels2):
                    flat = int(grid.flat_index(state, level1, level2))
                    back = grid.unflatten(flat)
                    assert (int(back[0]), int(back[1]), int(back[2])) == (state, level1, level2)

    def test_flat_index_is_a_bijection(self):
        grid = RewardGrid(delta=5.0, upper1=40.0, upper2=20.0)
        states, levels1, levels2 = np.meshgrid(
            np.arange(2), np.arange(grid.n_levels1), np.arange(grid.n_levels2), indexing="ij"
        )
        flat = grid.flat_index(states.ravel(), levels1.ravel(), levels2.ravel())
        assert np.unique(flat).size == flat.size
        assert flat.min() == 0
        assert flat.max() == grid.n_expanded_states(2) - 1

    @given(
        delta=st.floats(min_value=0.5, max_value=50.0),
        value=st.floats(min_value=0.0, max_value=1000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_level_of_contains_value(self, delta, value):
        grid = RewardGrid(delta=delta, upper1=1000.0)
        level = grid.level_of(value)
        lower = level * delta
        upper = (level + 1) * delta
        if value <= 0:
            assert level == 0
        else:
            assert lower - 1e-6 <= value <= upper + 1e-6 or level == grid.n_levels1 - 1

    @pytest.mark.parametrize("kwargs", [
        {"delta": 0.0, "upper1": 10.0},
        {"delta": 1.0, "upper1": 0.0},
        {"delta": 20.0, "upper1": 10.0},
        {"delta": 1.0, "upper1": 10.0, "upper2": -1.0},
    ])
    def test_invalid_grids_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RewardGrid(**kwargs)


class TestKiBaMRM:
    def test_reward_bounds_and_initial_rewards(self, paper_battery):
        model = KiBaMRM(workload=onoff_workload(frequency=1.0), battery=paper_battery)
        assert model.reward_bounds == pytest.approx((4500.0, 2700.0))
        assert model.initial_rewards == pytest.approx((4500.0, 2700.0))
        assert not model.is_single_well

    def test_single_well_detection(self):
        battery = KiBaMParameters(capacity=100.0, c=1.0, k=0.0)
        model = KiBaMRM(workload=onoff_workload(frequency=1.0), battery=battery)
        assert model.is_single_well
        assert model.reward_bounds[1] == 0.0

    def test_reward_rates_at_full_charge(self, paper_battery):
        model = KiBaMRM(workload=simple_workload(), battery=paper_battery)
        send = model.workload.state_index("send")
        r1, r2 = model.reward_rates(send, 4500.0, 2700.0)
        assert r1 == pytest.approx(-0.2)
        assert r2 == pytest.approx(0.0)

    def test_reward_rates_with_recovery(self, paper_battery):
        model = KiBaMRM(workload=simple_workload(), battery=paper_battery)
        sleep = model.workload.state_index("sleep")
        r1, r2 = model.reward_rates(sleep, 2000.0, 2700.0)
        expected_flow = paper_battery.k * (2700.0 / 0.375 - 2000.0 / 0.625)
        assert r1 == pytest.approx(expected_flow)
        assert r2 == pytest.approx(-expected_flow)

    def test_reward_rates_zero_when_empty(self, paper_battery):
        model = KiBaMRM(workload=simple_workload(), battery=paper_battery)
        assert model.reward_rates(0, 0.0, 2000.0) == (0.0, 0.0)

    def test_no_transfer_when_heights_equalised(self, paper_battery):
        model = KiBaMRM(workload=simple_workload(), battery=paper_battery)
        # h1 > h2: no (negative) transfer according to Section 4.2.
        assert model.transfer_rate(4500.0, 1000.0) == 0.0

    def test_reward_rate_matrix_shape(self, paper_battery):
        model = KiBaMRM(workload=simple_workload(), battery=paper_battery)
        matrix = model.reward_rate_matrix(3000.0, 2000.0)
        assert matrix.shape == (3, 2)
        # Row sums equal the negated currents: the transfer terms cancel.
        assert np.allclose(matrix.sum(axis=1), -model.workload.currents)

    def test_invalid_state_rejected(self, paper_battery):
        model = KiBaMRM(workload=simple_workload(), battery=paper_battery)
        with pytest.raises(ValueError):
            model.reward_rates(7, 100.0, 100.0)
